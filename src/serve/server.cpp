#include "serve/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "codec/payload.hpp"
#include "serve/fault_injection.hpp"

namespace dp::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One read() slice per readiness report; level-triggered poll re-reports
/// anything left, so a flooding client cannot monopolize an iteration.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact a connection's read buffer once this much parsed prefix
/// accumulates (otherwise only when it empties).
constexpr std::size_t kCompactAt = 64 * 1024;
/// Loop tick while responses are queued but unsendable (socket full) or a
/// stop is in progress: bounds how stale a write-stall verdict can be.
constexpr int kTickMs = 20;

/// Metrics page bytes -> the u32 payload of its kResponse frame: packed
/// little-endian, NUL-padded up to the next word (Client::metrics strips
/// the padding). The packing is part of the wire contract (protocol.hpp).
std::vector<std::uint32_t> pack_text(const std::string& text) {
  std::vector<std::uint32_t> out((text.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < text.size(); ++i) {
    out[i / 4] |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(text[i]))
                  << (8 * (i % 4));
  }
  return out;
}

void append_counter(std::string& out, const char* name, const std::string& labels,
                    std::uint64_t v) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(v);
  out += '\n';
}

void append_gauge(std::string& out, const char* name, const std::string& labels, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += name;
  out += labels;
  out += ' ';
  out += buf;
  out += '\n';
}

}  // namespace

// ---------------------------------------------------------------------------
// Server — construction / lifecycle
// ---------------------------------------------------------------------------

namespace {

std::size_t resolve_shards(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// The single-model constructor's private registry: one entry, "default",
/// with one admission lane per shard. Several shards each spawn dispatcher
/// Sessions; unless the caller wired a pool of their own (or asked for
/// inline single-threaded sessions), point them all at ONE shared
/// WorkerPool so the thread count stays what session_threads says, not
/// shards x dispatchers x session_threads. Throws std::invalid_argument on
/// a null model, before any thread starts.
std::unique_ptr<ModelRegistry> make_default_registry(
    std::shared_ptr<const runtime::Model> model, BatcherOptions opts, std::size_t lanes) {
  if (lanes > 1 && opts.shared_pool == nullptr && opts.session_threads != 1) {
    opts.shared_pool = std::make_shared<runtime::WorkerPool>(opts.session_threads);
  }
  auto registry = std::make_unique<ModelRegistry>(lanes);
  registry->load("default", std::move(model), opts);
  return registry;
}

}  // namespace

Server::Server(std::shared_ptr<const runtime::Model> model, ServerOptions opts)
    : Server(make_default_registry(std::move(model), opts.batcher, resolve_shards(opts.shards)),
             nullptr, opts) {}

Server::Server(ModelRegistry& registry, ServerOptions opts)
    : Server(nullptr, &registry, opts) {}

Server::Server(std::unique_ptr<ModelRegistry> owned, ModelRegistry* external,
               ServerOptions opts)
    : registry_(external != nullptr ? external : owned.get()),
      owned_registry_(std::move(owned)),
      write_timeout_(opts.write_timeout),
      max_write_queue_bytes_(opts.max_write_queue_bytes),
      max_connections_per_shard_(opts.max_connections_per_shard),
      max_inflight_per_connection_(opts.max_inflight_per_connection),
      rate_limit_rps_(opts.rate_limit_rps),
      rate_limit_burst_(opts.rate_limit_rps <= 0
                            ? 0
                            : std::max(1.0, opts.rate_limit_burst > 0 ? opts.rate_limit_burst
                                                                      : opts.rate_limit_rps)),
      chaos_(opts.chaos),
      start_(Clock::now()) {
  const std::size_t n = resolve_shards(opts.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->index = i;
    shards_.push_back(std::move(sh));
  }
  if (opts.tcp_port) {
    // Shard 0 binds (resolving an ephemeral request); the rest join the
    // same port via SO_REUSEPORT, so the kernel hashes inbound connections
    // across the shard listeners with no user-space accept coordination.
    shards_[0]->tcp = std::make_unique<TcpTransport>(*opts.tcp_port, 128, n > 1);
    tcp_port_ = shards_[0]->tcp->port();
    for (std::size_t i = 1; i < n; ++i) {
      shards_[i]->tcp = std::make_unique<TcpTransport>(tcp_port_, 128, true);
    }
  }
  if (opts.metrics_port) {
    shards_[0]->metrics = std::make_unique<TcpTransport>(*opts.metrics_port);
    metrics_port_ = shards_[0]->metrics->port();
  }
  for (auto& sh : shards_) start_loop(*sh);
}

Server::~Server() { stop(); }

void Server::start_loop(Shard& sh) {
  auto [r, w] = local_stream_pair();
  sh.wake_r = std::move(r);
  sh.wake_w = std::move(w);
  sh.wake_r.set_nonblocking(true);
  sh.wake_w.set_nonblocking(true);
  sh.loop = std::thread([this, &sh] { loop_main(sh); });
}

void Server::wake(Shard& sh) {
  // Inline completions (rejections, routing errors) run on the loop thread
  // itself, which flushes write queues before it next sleeps — waking it
  // would only buy a redundant syscall and a spurious poll iteration.
  if (std::this_thread::get_id() == sh.tid.load()) return;
  const char byte = 1;
  // If the pipe is full the loop has plenty to wake up for already.
  (void)sh.wake_w.write_some(&byte, 1);
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    // Guarded by stop_called_, not stopped_: a shard's poll-failure exit
    // sets stopped_ on its own, and stop() must still run to completion
    // then — otherwise ~Server would destroy joinable threads.
    if (stop_called_) return;
    stop_called_ = true;
    stopped_ = true;
  }
  // Phase 1 — drain. New requests read from here on get kShutdown; every
  // request already accepted by a batcher lane is flushed through its
  // Session and its response enqueued (ModelRegistry::shutdown_all returns
  // only after every dispatcher joined, i.e. after every completion
  // callback fired).
  draining_.store(true);
  registry_->shutdown_all();
  // Phase 2 — flush and close. Every shard writes out every queue (dropping
  // clients that stall past write_timeout), closes its connections, exits.
  stopping_.store(true);
  for (auto& sh : shards_) wake(*sh);
  for (auto& sh : shards_) {
    if (sh->loop.joinable()) sh->loop.join();
  }
}

std::shared_ptr<const runtime::Model> Server::model() const {
  std::shared_ptr<const runtime::Model> m = registry_->model("");
  if (!m) throw std::runtime_error("serve::Server: no default model entry");
  return m;
}

Client Server::connect() { return connect(std::string()); }

Client Server::connect(const std::string& model_name) {
  std::shared_ptr<const runtime::Model> model = registry_->model(model_name);
  auto [server_end, client_end] = local_stream_pair();
  {
    // The stopped_ check and the push are one critical section: a connect
    // that loses the race against stop() must throw, not strand a pushed
    // connection nobody will ever accept. (A connect that wins the race but
    // whose connection the stopping loop refuses gets a clean EOF.)
    std::lock_guard<std::mutex> lk(m_);
    if (stopped_) throw std::runtime_error("serve::Server: connect() after stop()");
    if (!model) {
      throw std::invalid_argument("serve::Server: connect() to unknown model '" +
                                  model_name + "'");
    }
    // Deal in-process connections round-robin: the accept fan-out for the
    // transport that has no kernel to spread it.
    Shard& sh = *shards_[next_shard_++ % shards_.size()];
    sh.local.push(std::move(server_end));  // wakes that shard; it accepts + registers
  }
  return Client(std::move(model), std::move(client_end), model_name);
}

ServerStats Server::stats() const {
  ServerStats s;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->m);
    const ShardStats& c = sh->counters;
    s.connections += c.connections;
    s.frames_in += c.frames_in;
    s.frames_out += c.frames_out;
    s.bad_frames += c.bad_frames;
    s.bad_requests += c.bad_requests;
    s.not_found += c.not_found;
    s.dropped += c.dropped;
    s.overloaded += c.overloaded;
    s.rate_limited += c.rate_limited;
    s.metrics_scrapes += c.metrics_scrapes;
  }
  if (const std::optional<BatcherStats> b = registry_->stats("")) s.batcher = *b;
  return s;
}

std::vector<ShardStats> Server::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->m);
    out.push_back(sh->counters);
  }
  return out;
}

std::string Server::metrics_text() const {
  // Plaintext scrape page: `name{labels} value` lines. The field set below
  // is a contract — scrapers parse it — so additions are fine, renames and
  // removals are not (docs/serving.md documents every line).
  std::string out;
  out.reserve(1024);
  out += "# dp_serve metrics v1\n";
  const double up = std::chrono::duration<double>(Clock::now() - start_).count();
  const std::vector<ShardStats> per_shard = shard_stats();
  std::uint64_t requests_total = 0;
  for (const ShardStats& s : per_shard) requests_total += s.frames_in;
  const unsigned hw = std::thread::hardware_concurrency();
  append_gauge(out, "dp_uptime_seconds", "", up);
  append_counter(out, "dp_hardware_concurrency", "", hw == 0 ? 1 : hw);
  append_counter(out, "dp_shards", "", per_shard.size());
  append_counter(out, "dp_requests_total", "", requests_total);
  append_gauge(out, "dp_requests_per_second", "",
               up > 0 ? static_cast<double>(requests_total) / up : 0.0);
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    const ShardStats& s = per_shard[i];
    const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
    append_counter(out, "dp_shard_connections", label, s.connections);
    append_counter(out, "dp_shard_frames_in", label, s.frames_in);
    append_counter(out, "dp_shard_frames_out", label, s.frames_out);
    append_counter(out, "dp_shard_bad_frames", label, s.bad_frames);
    append_counter(out, "dp_shard_bad_requests", label, s.bad_requests);
    append_counter(out, "dp_shard_not_found", label, s.not_found);
    append_counter(out, "dp_shard_dropped", label, s.dropped);
    append_counter(out, "dp_shard_overloaded", label, s.overloaded);
    append_counter(out, "dp_shard_rate_limited", label, s.rate_limited);
    append_counter(out, "dp_shard_metrics_scrapes", label, s.metrics_scrapes);
  }
  for (const std::string& name : registry_->names()) {
    const std::optional<BatcherStats> b = registry_->stats(name);
    if (!b) continue;  // unloaded between names() and here
    const std::string label = "{model=\"" + name + "\"}";
    append_counter(out, "dp_model_accepted", label, b->accepted);
    append_counter(out, "dp_model_rejected", label, b->rejected);
    append_counter(out, "dp_model_completed", label, b->completed);
    append_counter(out, "dp_model_deadline_exceeded", label, b->deadline_exceeded);
    append_counter(out, "dp_model_batches", label, b->batches);
    append_counter(out, "dp_model_queue_depth", label, b->queue_depth);
    append_counter(out, "dp_model_in_flight", label, b->in_flight);
    append_gauge(out, "dp_model_occupancy", label, b->mean_occupancy);
    append_gauge(out, "dp_model_wait_p50_us", label, b->wait_p50_us);
    append_gauge(out, "dp_model_wait_p99_us", label, b->wait_p99_us);
    append_gauge(out, "dp_model_wait_p999_us", label, b->wait_p999_us);
  }
  return out;
}

void Server::bump(Shard& sh, std::uint64_t ShardStats::* counter) {
  std::lock_guard<std::mutex> lk(sh.m);
  ++(sh.counters.*counter);
}

// ---------------------------------------------------------------------------
// Server — event loops (one per shard)
// ---------------------------------------------------------------------------

void Server::accept_from(Shard& sh, Transport& transport,
                         std::vector<std::shared_ptr<Conn>>& conns,
                         std::size_t& request_conns, bool metrics_conn) {
  for (;;) {
    FdStream stream = transport.accept();
    if (!stream.valid()) return;
    // A connection that reaches us during stop is NOT silently dropped: it
    // may have been dialed — and had requests pipelined onto it — before
    // stop() began, and closing it unread would reset the peer. Admit it;
    // the stopping loop's graceful-close sweep reads whatever it sent,
    // answers each frame kShutdown, and ends the stream with a clean EOF
    // within a tick or two.
    if (chaos_ && !metrics_conn) {
      // Fault injection: splice the injector's relay between this loop and
      // the real peer, so every byte of the conversation can be sliced,
      // delayed or reset under test control.
      stream = chaos_->wrap(std::move(stream));
    }
    stream.set_nonblocking(true);
    auto conn = std::make_shared<Conn>(std::move(stream));
    conn->owner = &sh;
    conn->last_progress = Clock::now();
    conn->tokens = rate_limit_burst_;  // a fresh connection starts with a full bucket
    conn->bucket_refill = conn->last_progress;
    if (metrics_conn) {
      // One-shot scrape: the page is queued now, the read side is
      // short-circuited, and the graceful-close path closes the connection
      // the moment the queue flushes. No framing — nc/curl territory.
      conn->raw = true;
      conn->read_done = true;
      const std::string text = metrics_text();
      conn->wq_bytes = text.size();
      conn->wq.emplace_back(text.begin(), text.end());
      bump(sh, &ShardStats::metrics_scrapes);
    } else {
      if (max_connections_per_shard_ > 0 && request_conns >= max_connections_per_shard_) {
        // Over the cap: keep the connection just long enough to answer its
        // first frames with a clean kOverloaded status, instead of slamming
        // the socket shut and leaving the client to guess why.
        conn->reject = true;
      }
      ++request_conns;
      bump(sh, &ShardStats::connections);
    }
    conns.push_back(std::move(conn));
  }
}

void Server::loop_main(Shard& sh) {
  sh.tid.store(std::this_thread::get_id());
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<pollfd> pfds;
  std::vector<std::uint8_t> chunk(kReadChunk);

  // When the loop exits nobody accepts anymore: close this shard's
  // listeners so a late connect is refused instead of parked in the kernel
  // backlog.
  struct ListenerGuard {
    Shard& sh;
    ~ListenerGuard() {
      sh.tcp.reset();
      sh.metrics.reset();
    }
  } guard{sh};

  // While accept(2) is failing on resource exhaustion, the backlog keeps the
  // listener readable; excluding it from the poll set until this deadline is
  // what turns a 100%-CPU spin into a periodic retry.
  Clock::time_point tcp_backoff{};
  Clock::time_point metrics_backoff{};

  for (;;) {
    const bool stopping = stopping_.load();
    const auto iter_now = Clock::now();

    // --- build the poll set -----------------------------------------------
    pfds.clear();
    pfds.push_back({sh.wake_r.fd(), POLLIN, 0});
    pfds.push_back({sh.local.readiness_fd(), POLLIN, 0});
    const bool poll_tcp = sh.tcp != nullptr && iter_now >= tcp_backoff;
    std::size_t idx_tcp = 0;
    if (poll_tcp) {
      idx_tcp = pfds.size();
      pfds.push_back({sh.tcp->readiness_fd(), POLLIN, 0});
    }
    const bool poll_metrics = sh.metrics != nullptr && iter_now >= metrics_backoff;
    std::size_t idx_metrics = 0;
    if (poll_metrics) {
      idx_metrics = pfds.size();
      pfds.push_back({sh.metrics->readiness_fd(), POLLIN, 0});
    }
    const std::size_t base = pfds.size();
    bool any_wq = false;
    std::size_t request_conns = 0;  // live non-metrics conns; feeds the cap
    for (const std::shared_ptr<Conn>& conn : conns) {
      if (!conn->raw) ++request_conns;
      short events = 0;
      if (!conn->read_done && !stopping) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lk(conn->m);
        if (!conn->wq.empty()) {
          events |= POLLOUT;
          any_wq = true;
        }
      }
      pfds.push_back({conn->stream.fd(), events, 0});
    }

    int timeout = (stopping || any_wq) ? kTickMs : -1;
    const bool parked = (sh.tcp != nullptr && !poll_tcp) ||
                        (sh.metrics != nullptr && !poll_metrics);
    if (parked && timeout < 0) timeout = kTickMs;  // resume the listener
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0 && errno != EINTR) {
      // Unrecoverable poll failure (should not happen): die visibly. Marking
      // the server stopped makes later connect() calls throw instead of
      // handing out Clients nobody will ever accept, and every live
      // connection runs the normal drop protocol so late batcher callbacks
      // discard their responses instead of queueing into orphaned buffers.
      for (const std::shared_ptr<Conn>& conn : conns) {
        {
          std::lock_guard<std::mutex> lk(conn->m);
          conn->closed = true;
          conn->wq.clear();
          conn->wq_bytes = 0;
          conn->wq_front_off = 0;
        }
        conn->stream.shutdown_both();
        conn->stream.close();
      }
      {
        std::lock_guard<std::mutex> lk(sh.m);
        sh.counters.dropped += conns.size();
      }
      std::lock_guard<std::mutex> lk(m_);
      stopped_ = true;
      draining_.store(true);
      return;
    }

    // --- wakeups and new connections --------------------------------------
    if (pfds[0].revents != 0) {
      char drain[256];
      while (sh.wake_r.read_some(drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents != 0) {
      try {
        accept_from(sh, sh.local, conns, request_conns, false);
      } catch (const TransportError&) {
        // A connection we failed to register is simply lost (its FdStream
        // closed); the loop itself must survive.
      }
    }
    if (poll_tcp && pfds[idx_tcp].revents != 0) {
      try {
        accept_from(sh, *sh.tcp, conns, request_conns, false);
      } catch (const TransportError&) {
        // Out of fds (or similar): park the listener and retry shortly.
        tcp_backoff = Clock::now() + std::chrono::milliseconds(200);
      }
    }
    if (poll_metrics && pfds[idx_metrics].revents != 0) {
      try {
        accept_from(sh, *sh.metrics, conns, request_conns, true);
      } catch (const TransportError&) {
        metrics_backoff = Clock::now() + std::chrono::milliseconds(200);
      }
    }

    // --- per-connection readiness (only the conns present in this poll set;
    // fresh accepts join the next iteration) --------------------------------
    const std::size_t present = pfds.size() - base;
    std::size_t out = 0;  // compaction write cursor over conns[0..present)
    const auto now = Clock::now();
    for (std::size_t i = 0; i < present; ++i) {
      const std::shared_ptr<Conn>& conn = conns[i];
      const short revents = pfds[base + i].revents;
      bool alive = true;

      // Read side. POLLHUP can still have readable bytes queued ahead of the
      // EOF, so treat it as readable and let read_some report the 0.
      if (alive && !conn->read_done && !stopping &&
          (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        try {
          const ssize_t n = conn->stream.read_some(chunk.data(), chunk.size());
          if (n == 0) {
            conn->read_done = true;
          } else if (n > 0) {
            conn->rbuf.insert(conn->rbuf.end(), chunk.begin(), chunk.begin() + n);
            alive = drain_rbuf(sh, conn);  // false = framing error: drop
            if (!alive) bump(sh, &ShardStats::bad_frames);
          }
        } catch (const TransportError&) {
          alive = false;  // reset under us
        }
      }

      // A peer that is fully gone (POLLHUP/POLLERR after we already read its
      // EOF). If everything was served and flushed this is just a clean
      // disconnect (e.g. an in-process Client destroyed — AF_UNIX reports
      // POLLHUP on peer close). Otherwise the remaining work is
      // undeliverable, and keeping the connection while a batcher callback
      // is still outstanding would make poll(2) — which reports these
      // conditions regardless of the events mask — return immediately
      // forever, spinning the loop: drop it. (outstanding is read before
      // the queue: callbacks enqueue before they decrement.)
      if (alive && conn->read_done &&
          (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        const bool idle = conn->outstanding.load() == 0;
        bool wq_empty = false;
        {
          std::lock_guard<std::mutex> lk(conn->m);
          wq_empty = conn->wq.empty();
        }
        if (idle && wq_empty) {
          conn->stream.shutdown_both();
          conn->stream.close();
          continue;  // clean disconnect, not a drop
        }
        alive = false;
      }

      // Write side.
      if (alive) alive = flush_writes(sh, conn);

      // Stall / overflow verdicts.
      if (alive) {
        bool has_wq = false, overflow = false;
        {
          std::lock_guard<std::mutex> lk(conn->m);
          has_wq = !conn->wq.empty();
          overflow = conn->overflow;
        }
        if (overflow) {
          alive = false;
        } else if (!has_wq) {
          conn->last_progress = now;
          // Fully served and finished: graceful close once nothing is in
          // flight. stop() forces the same path for every connection. Order
          // matters: a completion callback enqueues its response BEFORE
          // decrementing `outstanding`, so reading outstanding==0 first and
          // re-checking the queue afterwards can never miss a response that
          // landed between the two reads (the reverse order could).
          if ((conn->read_done || stopping) && conn->outstanding.load() == 0) {
            bool still_empty = false;
            {
              std::lock_guard<std::mutex> lk(conn->m);
              still_empty = conn->wq.empty();
            }
            if (still_empty && !conn->read_done) {
              // stop() parks the read side, so requests pipelined before the
              // stop may still sit unread in the kernel buffer. close(2) on
              // a stream socket with unread receive data resets the peer —
              // destroying responses it has not yet consumed — and silently
              // discarding the bytes would leave those requests unanswered
              // (the client would see a clean EOF where a reply belongs).
              // One final sweep decodes whatever already arrived;
              // handle_request's draining_ path answers each frame with
              // kShutdown. The read side is then done for good, preserving
              // stop()'s termination bound against a client that keeps
              // sending.
              try {
                ssize_t n;
                while ((n = conn->stream.read_some(chunk.data(), chunk.size())) > 0) {
                  conn->rbuf.insert(conn->rbuf.end(), chunk.begin(), chunk.begin() + n);
                  if (!drain_rbuf(sh, conn)) break;  // framing error: close anyway
                }
              } catch (const TransportError&) {
                // Reset under us: nothing left to answer; close below.
              }
              conn->read_done = true;
              {
                std::lock_guard<std::mutex> lk(conn->m);
                still_empty = conn->wq.empty();
              }
              // If the sweep enqueued kShutdown replies, fall through: the
              // connection is kept, flushed on the next tick, then closed.
            }
            if (still_empty) {
              conn->stream.shutdown_both();
              conn->stream.close();
              continue;  // not kept
            }
          }
        } else {
          // Stall verdict. write_timeout 0 disables it in steady state, but
          // stop() must still terminate: a non-reading client would
          // otherwise pin the drain (and ~Server) forever, so the stopping
          // phase falls back to a bounded grace period.
          auto bound = write_timeout_;
          if (bound.count() == 0 && stopping) bound = std::chrono::milliseconds(5000);
          if (bound.count() > 0 && now - conn->last_progress > bound) {
            alive = false;  // peer stopped reading
          }
        }
      }

      if (!alive) {
        // Drop: discard queued responses, poison future enqueues, close.
        {
          std::lock_guard<std::mutex> lk(conn->m);
          conn->closed = true;
          conn->wq.clear();
          conn->wq_bytes = 0;
          conn->wq_front_off = 0;
        }
        conn->stream.shutdown_both();
        conn->stream.close();
        bump(sh, &ShardStats::dropped);
        continue;  // not kept
      }
      conns[out++] = conn;
    }
    // Keep the fresh accepts appended past `present`.
    for (std::size_t i = present; i < conns.size(); ++i) conns[out++] = std::move(conns[i]);
    conns.resize(out);

    if (stopping && conns.empty()) return;
  }
}

bool Server::drain_rbuf(Shard& sh, const std::shared_ptr<Conn>& conn) {
  FrameTally tally;
  bool ok = true;
  for (;;) {
    const std::span<const std::uint8_t> avail(conn->rbuf.data() + conn->rbuf_head,
                                              conn->rbuf.size() - conn->rbuf_head);
    std::size_t consumed = 0;
    std::optional<Frame> frame;
    try {
      frame = try_extract(avail, consumed);
    } catch (const ProtocolError&) {
      ok = false;  // un-resyncable on a byte stream: caller drops the conn
      break;
    }
    if (!frame) break;
    conn->rbuf_head += consumed;
    ++tally.frames_in;
    handle_request(sh, conn, std::move(*frame), tally);
  }
  // One stats lock per read chunk, not per frame (a pipelining client can
  // deliver dozens of frames per chunk).
  if (tally.frames_in > 0) {
    std::lock_guard<std::mutex> lk(sh.m);
    sh.counters.frames_in += tally.frames_in;
    sh.counters.bad_requests += tally.bad_requests;
    sh.counters.not_found += tally.not_found;
    sh.counters.overloaded += tally.overloaded;
    sh.counters.rate_limited += tally.rate_limited;
    sh.counters.metrics_scrapes += tally.metrics;
  }
  if (!ok) return false;
  // An over-cap connection has now been answered: stop reading so the
  // graceful-close path flushes the kOverloaded responses and closes it.
  if (conn->reject && tally.frames_in > 0) conn->read_done = true;
  if (conn->rbuf_head == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rbuf_head = 0;
  } else if (conn->rbuf_head >= kCompactAt) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->rbuf_head));
    conn->rbuf_head = 0;
  }
  return true;
}

void Server::handle_request(Shard& sh, const std::shared_ptr<Conn>& conn, Frame frame,
                            FrameTally& tally) {
  const std::uint64_t id = frame.request_id;
  if (draining_.load()) {
    enqueue_response(conn, id, Status::kShutdown, {});
    return;
  }
  if (frame.type == FrameType::kMetricsRequest) {
    // In-band scrape: reserved frame type, empty payload required (the
    // layout is pinned by the adversarial protocol tests). Answered even on
    // an over-cap connection — observability under overload is the point.
    if (!frame.payload.empty() || !frame.model.empty()) {
      ++tally.bad_requests;
      enqueue_response(conn, id, Status::kBadRequest, {});
      return;
    }
    ++tally.metrics;
    const std::vector<std::uint32_t> page = pack_text(metrics_text());
    enqueue_response(conn, id, Status::kOk, page);
    return;
  }
  if (frame.type != FrameType::kRequest) {
    ++tally.bad_requests;
    enqueue_response(conn, id, Status::kBadRequest, {});
    return;
  }
  if (conn->reject) {
    // Over the connection cap: clean rejection, then drain_rbuf stops the
    // read side so the connection closes once the response flushes.
    ++tally.overloaded;
    enqueue_response(conn, id, Status::kOverloaded, {});
    return;
  }
  if (rate_limit_rps_ > 0) {
    // Per-connection token bucket: continuous refill at rate_limit_rps up to
    // the burst capacity, one token per request frame. An empty bucket is a
    // clean kOverloaded — no batcher, no queue space, no inference.
    const auto now = Clock::now();
    const double elapsed = std::chrono::duration<double>(now - conn->bucket_refill).count();
    conn->bucket_refill = now;
    conn->tokens = std::min(rate_limit_burst_, conn->tokens + elapsed * rate_limit_rps_);
    if (conn->tokens < 1.0) {
      ++tally.rate_limited;
      enqueue_response(conn, id, Status::kOverloaded, {});
      return;
    }
    conn->tokens -= 1.0;
  }
  if (max_inflight_per_connection_ > 0 &&
      conn->outstanding.load() >= max_inflight_per_connection_) {
    ++tally.overloaded;
    enqueue_response(conn, id, Status::kOverloaded, {});
    return;
  }
  // Route: v2 by name, v1 (empty name) to the default entry. The lease pins
  // the entry so a concurrent hot swap waits for this submit to land, then
  // drains it on the old model — never drops it.
  ModelRegistry::Lease lease = registry_->acquire(frame.model);
  if (!lease) {
    // Re-check draining_: stop() may have emptied the registry between the
    // check above and this lookup, and that must read as a shutdown, not as
    // "your model does not exist".
    if (draining_.load()) {
      enqueue_response(conn, id, Status::kShutdown, {});
      return;
    }
    ++tally.not_found;
    enqueue_response(conn, id, Status::kNotFound, {});
    return;
  }
  const std::size_t dim = lease->model->input_dim();
  // Requests carry INPUT-format patterns (the client's one encode rule);
  // replies carry OUTPUT-format patterns — for a mixed-precision model the
  // two differ, so the compressed-payload widths below are chosen per
  // direction.
  const num::Format& fmt = lease->model->input_format();
  // A v4 compressed payload is an entropy-coded block; decode it back into
  // bit patterns before anything interprets it. The decoder is the one that
  // faces untrusted bytes, and it fails closed: any malformed block — bad
  // length, bad padding, hostile element count — is a CodecError, answered
  // kBadRequest exactly like a wrong-dimension raw request (the framing
  // layer already vouched for the CRC, so the connection itself is fine).
  std::span<const std::uint32_t> patterns = frame.payload;
  std::vector<std::uint32_t> decoded;
  if (frame.payload_encoding == kPayloadEncodingCodec) {
    try {
      decoded = codec::decode_payload(frame.payload, fmt.total_bits(), dim);
    } catch (const codec::CodecError&) {
      ++tally.bad_requests;
      enqueue_response(conn, id, Status::kBadRequest, {});
      return;
    }
    patterns = decoded;
  }
  if (patterns.size() != dim) {
    ++tally.bad_requests;
    enqueue_response(conn, id, Status::kBadRequest, {});
    return;
  }
  // The wire carries the sample as format bit patterns; the Session
  // quantizes its input, and RNE quantization is idempotent on representable
  // values, so this decode->requantize round trip is exact.
  sh.x_scratch.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) sh.x_scratch[i] = fmt.to_double(patterns[i]);
  // The v3 deadline budget is relative (microseconds remaining, so it
  // survives clock skew); anchor it to OUR steady clock the moment the
  // request enters the process. The batcher sheds it with kDeadlineExceeded
  // if the instant passes while it is still queued.
  DynamicBatcher::Deadline deadline;
  if (frame.deadline_us > 0) {
    deadline = Clock::now() + std::chrono::microseconds(frame.deadline_us);
  }
  conn->outstanding.fetch_add(1);
  // Shard-private admission lane: no cross-shard contention on the submit
  // lock (lane() wraps modulo the entry's lane count, so an external
  // registry with fewer lanes than shards still routes correctly).
  const std::uint8_t encoding = frame.payload_encoding;
  const int width = lease->model->output_format().total_bits();
  lease->lane(sh.index).submit(
      sh.x_scratch,
      [this, conn, id, encoding, width](Status status, std::span<const std::uint32_t> bits) {
        enqueue_response(conn, id, status, bits, encoding, width);
        // Enqueue-then-decrement is the loop's close-check ordering contract.
        // The last decrement must also wake the loop: if the loop flushed the
        // response in the window between the two, it saw outstanding == 1 and
        // parked with no events to wait for — without this wake a half-closed
        // connection would never get its graceful close (EOF to the peer).
        if (conn->outstanding.fetch_sub(1) == 1) wake(*conn->owner);
      },
      deadline);
}

void Server::enqueue_response(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                              Status status, std::span<const std::uint32_t> bits,
                              std::uint8_t encoding, int width) {
  Frame frame;
  if (status == Status::kOk && encoding == kPayloadEncodingCodec) {
    // Mirror the request's encoding: a compressed request earns a compressed
    // v4 response. Error responses stay plain v1 even then — they carry no
    // payload, so compression buys nothing and a raw-only observer can still
    // read every failure on the wire.
    frame.version = kProtocolV4;
    frame.payload_encoding = kPayloadEncodingCodec;
    frame.payload = codec::encode_payload(bits, width);
  } else {
    frame.version = kProtocolV1;  // responses to raw requests are v1 (see protocol.hpp)
    frame.payload.assign(bits.begin(), bits.end());
  }
  frame.type = FrameType::kResponse;
  frame.status = status;
  frame.request_id = id;
  std::vector<std::uint8_t> bytes = encode(frame);
  {
    std::lock_guard<std::mutex> lk(conn->m);
    if (conn->closed) return;  // dropped connection: response discarded
    conn->wq_bytes += bytes.size();
    conn->wq.push_back(std::move(bytes));
    if (conn->wq_bytes > max_write_queue_bytes_) conn->overflow = true;
  }
  wake(*conn->owner);
}

bool Server::flush_writes(Shard& sh, const std::shared_ptr<Conn>& conn) {
  // Never hold conn->m across the send(2): dispatcher completion callbacks
  // enqueue under the same mutex, and inference threads must not queue up
  // behind socket I/O. Holding a pointer into the front frame without the
  // lock is safe because only this (loop) thread ever pops or clears the
  // queue, and deque push_back does not invalidate references to existing
  // elements.
  std::size_t completed = 0;
  bool ok = true;
  for (;;) {
    const std::uint8_t* data = nullptr;
    std::size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lk(conn->m);
      if (conn->wq.empty()) break;
      const std::vector<std::uint8_t>& front = conn->wq.front();
      data = front.data() + conn->wq_front_off;
      remaining = front.size() - conn->wq_front_off;
    }
    ssize_t n = 0;
    try {
      n = conn->stream.write_some(data, remaining);
    } catch (const TransportError&) {
      ok = false;  // peer vanished
      break;
    }
    if (n < 0) break;  // socket buffer full; POLLOUT will resume us
    {
      std::lock_guard<std::mutex> lk(conn->m);
      conn->wq_front_off += static_cast<std::size_t>(n);
      conn->wq_bytes -= static_cast<std::size_t>(n);
      if (conn->wq_front_off == conn->wq.front().size()) {
        conn->wq.pop_front();
        conn->wq_front_off = 0;
        ++completed;
      }
    }
    conn->last_progress = Clock::now();
  }
  // Raw metrics scrapes are text, not frames; they don't count as frames_out.
  if (completed > 0 && !conn->raw) {
    std::lock_guard<std::mutex> lk(sh.m);
    sh.counters.frames_out += completed;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::uint64_t Client::send(std::span<const double> x) { return send(x, 0); }

std::uint64_t Client::send(std::span<const double> x, std::uint64_t deadline_budget_us) {
  if (x.size() != model_->input_dim()) {
    throw std::invalid_argument("serve::Client: sample size != model input_dim");
  }
  Frame frame;
  // Compression needs the v4 layout, a deadline at least v3; otherwise keep
  // the smallest frame that can route the request (v1 for the default entry,
  // v2 for a named one).
  frame.version = opts_.compress           ? kProtocolV4
                  : deadline_budget_us > 0 ? kProtocolV3
                  : model_name_.empty()    ? kProtocolV1
                                           : kProtocolV2;
  frame.type = FrameType::kRequest;
  frame.request_id = next_id_++;
  frame.model = model_name_;
  frame.deadline_us = deadline_budget_us;
  frame.payload.reserve(x.size());
  // Requests are always INPUT-format patterns; replies come back in the
  // model's OUTPUT format (they differ for a mixed-precision model).
  for (const double v : x) frame.payload.push_back(model_->input_format().from_double(v));
  if (opts_.compress) {
    frame.payload_encoding = kPayloadEncodingCodec;
    frame.payload = codec::encode_payload(frame.payload, model_->input_format().total_bits());
  }
  write_frame(stream_, frame);
  awaiting_.insert(frame.request_id);
  return frame.request_id;
}

std::optional<std::chrono::steady_clock::time_point> Client::recv_deadline() const {
  if (!opts_.recv_timeout) return std::nullopt;
  return std::chrono::steady_clock::now() + *opts_.recv_timeout;
}

std::optional<Frame> Client::next_frame(
    const std::optional<std::chrono::steady_clock::time_point>& deadline, bool& timed_out) {
  timed_out = false;
  for (;;) {
    // Carve a complete frame off the internal buffer first: bytes already
    // read must never be lost to a timeout.
    const std::span<const std::uint8_t> avail(rbuf_.data() + rbuf_head_,
                                              rbuf_.size() - rbuf_head_);
    std::size_t consumed = 0;
    if (std::optional<Frame> frame = try_extract(avail, consumed)) {
      rbuf_head_ += consumed;
      if (rbuf_head_ == rbuf_.size()) {
        rbuf_.clear();
        rbuf_head_ = 0;
      }
      return frame;
    }
    if (deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= *deadline) {
        timed_out = true;
        return std::nullopt;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - now);
      pollfd p{stream_.fd(), POLLIN, 0};
      // +1: round the remaining wait up, or a sub-millisecond remainder
      // becomes a zero-timeout spin.
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()) + 1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw TransportError("serve::Client: poll failed while waiting for a response");
      }
      if (rc == 0) continue;  // re-check the deadline at the top
    }
    // The fd is blocking; without a deadline this parks until bytes arrive,
    // with one the poll above guaranteed something readable (data or EOF).
    std::uint8_t chunk[4096];
    const ssize_t n = stream_.read_some(chunk, sizeof(chunk));
    if (n == 0) return std::nullopt;  // clean EOF
    if (n > 0) rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

Reply Client::to_reply(Frame&& frame) {
  if (frame.payload_encoding == kPayloadEncodingCodec) {
    // A compressed (v4) response: decode the block back into raw bit
    // patterns so every caller above this sees exactly what a raw response
    // would have carried. The bound is the most elements a legal raw payload
    // could hold — the server vouched for nothing smaller.
    try {
      return Reply{frame.status,
                   codec::decode_payload(frame.payload, model_->output_format().total_bits(),
                                         kMaxPayloadBytes / 4)};
    } catch (const codec::CodecError& e) {
      throw ProtocolError(std::string("serve::Client: bad compressed response payload: ") +
                          e.what());
    }
  }
  return Reply{frame.status, std::move(frame.payload)};
}

std::optional<Frame> Client::receive_frame() {
  bool timed_out = false;
  std::optional<Frame> frame = next_frame(recv_deadline(), timed_out);
  if (timed_out) throw TransportError("serve::Client: receive_frame timed out");
  return frame;
}

Reply Client::receive(std::uint64_t id) {
  if (const auto it = buffered_.find(id); it != buffered_.end()) {
    Reply reply = std::move(it->second);
    buffered_.erase(it);
    return reply;
  }
  if (awaiting_.find(id) == awaiting_.end()) {
    throw std::invalid_argument("serve::Client: receive() for an id never sent or already received");
  }
  const std::optional<std::chrono::steady_clock::time_point> deadline = recv_deadline();
  for (;;) {
    bool timed_out = false;
    std::optional<Frame> frame = next_frame(deadline, timed_out);
    if (timed_out) {
      // The id stays in awaiting_: the response may still arrive, and a
      // later receive()/next_frame will buffer or return it. kTimeout never
      // travels on the wire — it is this client's own verdict.
      return Reply{Status::kTimeout, {}};
    }
    if (!frame) throw TransportError("serve::Client: server closed the connection");
    if (frame->type != FrameType::kResponse) {
      throw ProtocolError("serve::Client: server sent a non-response frame");
    }
    awaiting_.erase(frame->request_id);
    if (frame->request_id == id) {
      return to_reply(std::move(*frame));
    }
    // A response for a different pipelined request: park it for its
    // receive(). Out-of-order arrival is normal with dispatchers >= 2.
    const std::uint64_t other = frame->request_id;
    buffered_[other] = to_reply(std::move(*frame));
  }
}

std::string Client::metrics() {
  Frame frame;
  frame.version = kProtocolV1;
  frame.type = FrameType::kMetricsRequest;
  frame.request_id = next_id_++;
  write_frame(stream_, frame);
  const std::optional<std::chrono::steady_clock::time_point> deadline = recv_deadline();
  for (;;) {
    bool timed_out = false;
    std::optional<Frame> resp = next_frame(deadline, timed_out);
    if (timed_out) {
      // No Reply to carry kTimeout in: surface the expiry as a transport
      // failure (the scrape may still land in rbuf_ later, harmlessly).
      throw TransportError("serve::Client: metrics scrape timed out");
    }
    if (!resp) throw TransportError("serve::Client: server closed the connection");
    if (resp->type != FrameType::kResponse) {
      throw ProtocolError("serve::Client: server sent a non-response frame");
    }
    if (resp->request_id == frame.request_id) {
      if (resp->status != Status::kOk) {
        throw ProtocolError(std::string("serve::Client: metrics scrape refused: ") +
                            to_string(resp->status));
      }
      // Unpack the little-endian u32 payload and strip the NUL padding.
      std::string text;
      text.reserve(resp->payload.size() * 4);
      for (const std::uint32_t w : resp->payload) {
        for (int b = 0; b < 4; ++b) text.push_back(static_cast<char>((w >> (8 * b)) & 0xff));
      }
      while (!text.empty() && text.back() == '\0') text.pop_back();
      return text;
    }
    // A pipelined inference response overtook the scrape: park it.
    awaiting_.erase(resp->request_id);
    const std::uint64_t other = resp->request_id;
    buffered_[other] = to_reply(std::move(*resp));
  }
}

std::vector<double> Client::forward(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  std::vector<double> scores;
  if (!reply.ok()) return scores;
  scores.reserve(reply.bits.size());
  for (const std::uint32_t b : reply.bits) {
    scores.push_back(model_->output_format().to_double(b));
  }
  return scores;
}

int Client::predict(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  if (!reply.ok() || reply.bits.empty()) return -1;
  // Same recurrence as runtime::Model::readout_argmax: first strictly
  // greatest decoded score wins, so served predictions match Session ones.
  int best = 0;
  double best_score = model_->output_format().to_double(reply.bits[0]);
  for (std::size_t i = 1; i < reply.bits.size(); ++i) {
    const double score = model_->output_format().to_double(reply.bits[i]);
    if (score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

void Client::close() { stream_.shutdown_write(); }

Client connect_tcp(std::uint16_t port, std::shared_ptr<const runtime::Model> model,
                   std::string model_name, ClientOptions opts) {
  if (!model) throw std::invalid_argument("serve::connect_tcp: null model");
  if (model_name.size() > kMaxModelNameBytes) {
    // Catch the configuration mistake here, not as a ProtocolError from the
    // first send().
    throw std::invalid_argument("serve::connect_tcp: model name exceeds kMaxModelNameBytes");
  }
  Client client(std::move(model), tcp_connect(port), std::move(model_name));
  client.set_options(std::move(opts));
  return client;
}

}  // namespace dp::serve
