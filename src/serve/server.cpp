#include "serve/server.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

namespace dp::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One read() slice per readiness report; level-triggered poll re-reports
/// anything left, so a flooding client cannot monopolize an iteration.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Compact a connection's read buffer once this much parsed prefix
/// accumulates (otherwise only when it empties).
constexpr std::size_t kCompactAt = 64 * 1024;
/// Loop tick while responses are queued but unsendable (socket full) or a
/// stop is in progress: bounds how stale a write-stall verdict can be.
constexpr int kTickMs = 20;

}  // namespace

// ---------------------------------------------------------------------------
// Server — construction / lifecycle
// ---------------------------------------------------------------------------

namespace {

/// The single-model constructor's private registry: one entry, "default".
/// Throws std::invalid_argument on a null model, before any thread starts.
std::unique_ptr<ModelRegistry> make_default_registry(
    std::shared_ptr<const runtime::Model> model, const BatcherOptions& opts) {
  auto registry = std::make_unique<ModelRegistry>();
  registry->load("default", std::move(model), opts);
  return registry;
}

}  // namespace

Server::Server(std::shared_ptr<const runtime::Model> model, ServerOptions opts)
    : Server(make_default_registry(std::move(model), opts.batcher), nullptr, opts) {}

Server::Server(ModelRegistry& registry, ServerOptions opts)
    : Server(nullptr, &registry, opts) {}

Server::Server(std::unique_ptr<ModelRegistry> owned, ModelRegistry* external,
               ServerOptions opts)
    : registry_(external != nullptr ? external : owned.get()),
      owned_registry_(std::move(owned)),
      write_timeout_(opts.write_timeout),
      max_write_queue_bytes_(opts.max_write_queue_bytes) {
  if (opts.tcp_port) {
    tcp_ = std::make_unique<TcpTransport>(*opts.tcp_port);
    tcp_port_ = tcp_->port();
  }
  start_loop();
}

Server::~Server() { stop(); }

void Server::start_loop() {
  auto [r, w] = local_stream_pair();
  wake_r_ = std::move(r);
  wake_w_ = std::move(w);
  wake_r_.set_nonblocking(true);
  wake_w_.set_nonblocking(true);
  loop_ = std::thread([this] { loop_main(); });
}

void Server::wake() {
  // Inline completions (rejections, routing errors) run on the loop thread
  // itself, which flushes write queues before it next sleeps — waking it
  // would only buy a redundant syscall and a spurious poll iteration.
  if (std::this_thread::get_id() == loop_tid_.load()) return;
  const char byte = 1;
  // If the pipe is full the loop has plenty to wake up for already.
  (void)wake_w_.write_some(&byte, 1);
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    // Guarded by stop_called_, not stopped_: the loop's poll-failure exit
    // sets stopped_ on its own, and stop() must still run to completion
    // then — otherwise ~Server would destroy a joinable thread.
    if (stop_called_) return;
    stop_called_ = true;
    stopped_ = true;
  }
  // Phase 1 — drain. New requests read from here on get kShutdown; every
  // request already accepted by a batcher is flushed through its Session and
  // its response enqueued (ModelRegistry::shutdown_all returns only after
  // every dispatcher joined, i.e. after every completion callback fired).
  draining_.store(true);
  registry_->shutdown_all();
  // Phase 2 — flush and close. The loop writes out every queue (dropping
  // clients that stall past write_timeout), closes the connections, exits.
  stopping_.store(true);
  wake();
  if (loop_.joinable()) loop_.join();
}

std::shared_ptr<const runtime::Model> Server::model() const {
  std::shared_ptr<const runtime::Model> m = registry_->model("");
  if (!m) throw std::runtime_error("serve::Server: no default model entry");
  return m;
}

Client Server::connect() { return connect(std::string()); }

Client Server::connect(const std::string& model_name) {
  std::shared_ptr<const runtime::Model> model = registry_->model(model_name);
  auto [server_end, client_end] = local_stream_pair();
  {
    // The stopped_ check and the push are one critical section: a connect
    // that loses the race against stop() must throw, not strand a pushed
    // connection nobody will ever accept. (A connect that wins the race but
    // whose connection the stopping loop refuses gets a clean EOF.)
    std::lock_guard<std::mutex> lk(m_);
    if (stopped_) throw std::runtime_error("serve::Server: connect() after stop()");
    if (!model) {
      throw std::invalid_argument("serve::Server: connect() to unknown model '" +
                                  model_name + "'");
    }
    local_.push(std::move(server_end));  // wakes the loop; it accepts + registers
  }
  return Client(std::move(model), std::move(client_end), model_name);
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lk(m_);
    s = counters_;
  }
  if (const std::optional<BatcherStats> b = registry_->stats("")) s.batcher = *b;
  return s;
}

void Server::bump(std::uint64_t ServerStats::* counter) {
  std::lock_guard<std::mutex> lk(m_);
  ++(counters_.*counter);
}

// ---------------------------------------------------------------------------
// Server — event loop
// ---------------------------------------------------------------------------

void Server::accept_from(Transport& transport, std::vector<std::shared_ptr<Conn>>& conns) {
  for (;;) {
    FdStream stream = transport.accept();
    if (!stream.valid()) return;
    if (stopping_.load()) continue;  // refused: FdStream closes on destruction
    stream.set_nonblocking(true);
    auto conn = std::make_shared<Conn>(std::move(stream));
    conn->last_progress = Clock::now();
    conns.push_back(std::move(conn));
    bump(&ServerStats::connections);
  }
}

void Server::loop_main() {
  loop_tid_.store(std::this_thread::get_id());
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<pollfd> pfds;
  std::vector<std::uint8_t> chunk(kReadChunk);

  // When the loop exits nobody accepts anymore: close the TCP listener so a
  // late connect() is refused instead of parked in the kernel backlog.
  struct ListenerGuard {
    std::unique_ptr<TcpTransport>& tcp;
    ~ListenerGuard() { tcp.reset(); }
  } guard{tcp_};

  // While accept(2) is failing on resource exhaustion, the backlog keeps the
  // listener readable; excluding it from the poll set until this deadline is
  // what turns a 100%-CPU spin into a periodic retry.
  Clock::time_point tcp_backoff{};

  for (;;) {
    const bool stopping = stopping_.load();
    const auto iter_now = Clock::now();

    // --- build the poll set -----------------------------------------------
    pfds.clear();
    pfds.push_back({wake_r_.fd(), POLLIN, 0});
    pfds.push_back({local_.readiness_fd(), POLLIN, 0});
    const bool poll_tcp = tcp_ != nullptr && iter_now >= tcp_backoff;
    if (poll_tcp) pfds.push_back({tcp_->readiness_fd(), POLLIN, 0});
    const std::size_t base = pfds.size();
    bool any_wq = false;
    for (const std::shared_ptr<Conn>& conn : conns) {
      short events = 0;
      if (!conn->read_done && !stopping) events |= POLLIN;
      {
        std::lock_guard<std::mutex> lk(conn->m);
        if (!conn->wq.empty()) {
          events |= POLLOUT;
          any_wq = true;
        }
      }
      pfds.push_back({conn->stream.fd(), events, 0});
    }

    int timeout = (stopping || any_wq) ? kTickMs : -1;
    if (tcp_ != nullptr && !poll_tcp && timeout < 0) timeout = kTickMs;  // resume the listener
    const int rc = ::poll(pfds.data(), pfds.size(), timeout);
    if (rc < 0 && errno != EINTR) {
      // Unrecoverable poll failure (should not happen): die visibly. Marking
      // the server stopped makes later connect() calls throw instead of
      // handing out Clients nobody will ever accept, and every live
      // connection runs the normal drop protocol so late batcher callbacks
      // discard their responses instead of queueing into orphaned buffers.
      for (const std::shared_ptr<Conn>& conn : conns) {
        {
          std::lock_guard<std::mutex> lk(conn->m);
          conn->closed = true;
          conn->wq.clear();
          conn->wq_bytes = 0;
          conn->wq_front_off = 0;
        }
        conn->stream.shutdown_both();
        conn->stream.close();
      }
      std::lock_guard<std::mutex> lk(m_);
      counters_.dropped += conns.size();
      stopped_ = true;
      draining_.store(true);
      return;
    }

    // --- wakeups and new connections --------------------------------------
    if (pfds[0].revents != 0) {
      char drain[256];
      while (wake_r_.read_some(drain, sizeof(drain)) > 0) {
      }
    }
    if (pfds[1].revents != 0) {
      try {
        accept_from(local_, conns);
      } catch (const TransportError&) {
        // A connection we failed to register is simply lost (its FdStream
        // closed); the loop itself must survive.
      }
    }
    if (poll_tcp && pfds[2].revents != 0) {
      try {
        accept_from(*tcp_, conns);
      } catch (const TransportError&) {
        // Out of fds (or similar): park the listener and retry shortly.
        tcp_backoff = Clock::now() + std::chrono::milliseconds(200);
      }
    }

    // --- per-connection readiness (only the conns present in this poll set;
    // fresh accepts join the next iteration) --------------------------------
    const std::size_t present = pfds.size() - base;
    std::size_t out = 0;  // compaction write cursor over conns[0..present)
    const auto now = Clock::now();
    for (std::size_t i = 0; i < present; ++i) {
      const std::shared_ptr<Conn>& conn = conns[i];
      const short revents = pfds[base + i].revents;
      bool alive = true;

      // Read side. POLLHUP can still have readable bytes queued ahead of the
      // EOF, so treat it as readable and let read_some report the 0.
      if (alive && !conn->read_done && !stopping &&
          (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        try {
          const ssize_t n = conn->stream.read_some(chunk.data(), chunk.size());
          if (n == 0) {
            conn->read_done = true;
          } else if (n > 0) {
            conn->rbuf.insert(conn->rbuf.end(), chunk.begin(), chunk.begin() + n);
            alive = drain_rbuf(conn);  // false = framing error: drop
            if (!alive) bump(&ServerStats::bad_frames);
          }
        } catch (const TransportError&) {
          alive = false;  // reset under us
        }
      }

      // A peer that is fully gone (POLLHUP/POLLERR after we already read its
      // EOF). If everything was served and flushed this is just a clean
      // disconnect (e.g. an in-process Client destroyed — AF_UNIX reports
      // POLLHUP on peer close). Otherwise the remaining work is
      // undeliverable, and keeping the connection while a batcher callback
      // is still outstanding would make poll(2) — which reports these
      // conditions regardless of the events mask — return immediately
      // forever, spinning the loop: drop it. (outstanding is read before
      // the queue: callbacks enqueue before they decrement.)
      if (alive && conn->read_done &&
          (revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        const bool idle = conn->outstanding.load() == 0;
        bool wq_empty = false;
        {
          std::lock_guard<std::mutex> lk(conn->m);
          wq_empty = conn->wq.empty();
        }
        if (idle && wq_empty) {
          conn->stream.shutdown_both();
          conn->stream.close();
          continue;  // clean disconnect, not a drop
        }
        alive = false;
      }

      // Write side.
      if (alive) alive = flush_writes(conn);

      // Stall / overflow verdicts.
      if (alive) {
        bool has_wq = false, overflow = false;
        {
          std::lock_guard<std::mutex> lk(conn->m);
          has_wq = !conn->wq.empty();
          overflow = conn->overflow;
        }
        if (overflow) {
          alive = false;
        } else if (!has_wq) {
          conn->last_progress = now;
          // Fully served and finished: graceful close once nothing is in
          // flight. stop() forces the same path for every connection. Order
          // matters: a completion callback enqueues its response BEFORE
          // decrementing `outstanding`, so reading outstanding==0 first and
          // re-checking the queue afterwards can never miss a response that
          // landed between the two reads (the reverse order could).
          if ((conn->read_done || stopping) && conn->outstanding.load() == 0) {
            bool still_empty = false;
            {
              std::lock_guard<std::mutex> lk(conn->m);
              still_empty = conn->wq.empty();
            }
            if (still_empty) {
              conn->stream.shutdown_both();
              conn->stream.close();
              continue;  // not kept
            }
          }
        } else {
          // Stall verdict. write_timeout 0 disables it in steady state, but
          // stop() must still terminate: a non-reading client would
          // otherwise pin the drain (and ~Server) forever, so the stopping
          // phase falls back to a bounded grace period.
          auto bound = write_timeout_;
          if (bound.count() == 0 && stopping) bound = std::chrono::milliseconds(5000);
          if (bound.count() > 0 && now - conn->last_progress > bound) {
            alive = false;  // peer stopped reading
          }
        }
      }

      if (!alive) {
        // Drop: discard queued responses, poison future enqueues, close.
        {
          std::lock_guard<std::mutex> lk(conn->m);
          conn->closed = true;
          conn->wq.clear();
          conn->wq_bytes = 0;
          conn->wq_front_off = 0;
        }
        conn->stream.shutdown_both();
        conn->stream.close();
        bump(&ServerStats::dropped);
        continue;  // not kept
      }
      conns[out++] = conn;
    }
    // Keep the fresh accepts appended past `present`.
    for (std::size_t i = present; i < conns.size(); ++i) conns[out++] = std::move(conns[i]);
    conns.resize(out);

    if (stopping && conns.empty()) return;
  }
}

bool Server::drain_rbuf(const std::shared_ptr<Conn>& conn) {
  FrameTally tally;
  bool ok = true;
  for (;;) {
    const std::span<const std::uint8_t> avail(conn->rbuf.data() + conn->rbuf_head,
                                              conn->rbuf.size() - conn->rbuf_head);
    std::size_t consumed = 0;
    std::optional<Frame> frame;
    try {
      frame = try_extract(avail, consumed);
    } catch (const ProtocolError&) {
      ok = false;  // un-resyncable on a byte stream: caller drops the conn
      break;
    }
    if (!frame) break;
    conn->rbuf_head += consumed;
    ++tally.frames_in;
    handle_request(conn, std::move(*frame), tally);
  }
  // One stats lock per read chunk, not per frame (a pipelining client can
  // deliver dozens of frames per chunk).
  if (tally.frames_in > 0) {
    std::lock_guard<std::mutex> lk(m_);
    counters_.frames_in += tally.frames_in;
    counters_.bad_requests += tally.bad_requests;
    counters_.not_found += tally.not_found;
  }
  if (!ok) return false;
  if (conn->rbuf_head == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rbuf_head = 0;
  } else if (conn->rbuf_head >= kCompactAt) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<std::ptrdiff_t>(conn->rbuf_head));
    conn->rbuf_head = 0;
  }
  return true;
}

void Server::handle_request(const std::shared_ptr<Conn>& conn, Frame frame,
                            FrameTally& tally) {
  const std::uint64_t id = frame.request_id;
  if (draining_.load()) {
    enqueue_response(conn, id, Status::kShutdown, {});
    return;
  }
  if (frame.type != FrameType::kRequest) {
    ++tally.bad_requests;
    enqueue_response(conn, id, Status::kBadRequest, {});
    return;
  }
  // Route: v2 by name, v1 (empty name) to the default entry. The lease pins
  // the entry so a concurrent hot swap waits for this submit to land, then
  // drains it on the old model — never drops it.
  ModelRegistry::Lease lease = registry_->acquire(frame.model);
  if (!lease) {
    // Re-check draining_: stop() may have emptied the registry between the
    // check above and this lookup, and that must read as a shutdown, not as
    // "your model does not exist".
    if (draining_.load()) {
      enqueue_response(conn, id, Status::kShutdown, {});
      return;
    }
    ++tally.not_found;
    enqueue_response(conn, id, Status::kNotFound, {});
    return;
  }
  const std::size_t dim = lease->model->input_dim();
  if (frame.payload.size() != dim) {
    ++tally.bad_requests;
    enqueue_response(conn, id, Status::kBadRequest, {});
    return;
  }
  // The wire carries the sample as format bit patterns; the Session
  // quantizes its input, and RNE quantization is idempotent on representable
  // values, so this decode->requantize round trip is exact.
  const num::Format& fmt = lease->model->format();
  x_scratch_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) x_scratch_[i] = fmt.to_double(frame.payload[i]);
  conn->outstanding.fetch_add(1);
  lease->batcher.submit(
      x_scratch_, [this, conn, id](Status status, std::span<const std::uint32_t> bits) {
        enqueue_response(conn, id, status, bits);
        conn->outstanding.fetch_sub(1);
      });
}

void Server::enqueue_response(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                              Status status, std::span<const std::uint32_t> bits) {
  Frame frame;
  frame.version = kProtocolV1;  // responses are always v1 (see protocol.hpp)
  frame.type = FrameType::kResponse;
  frame.status = status;
  frame.request_id = id;
  frame.payload.assign(bits.begin(), bits.end());
  std::vector<std::uint8_t> bytes = encode(frame);
  {
    std::lock_guard<std::mutex> lk(conn->m);
    if (conn->closed) return;  // dropped connection: response discarded
    conn->wq_bytes += bytes.size();
    conn->wq.push_back(std::move(bytes));
    if (conn->wq_bytes > max_write_queue_bytes_) conn->overflow = true;
  }
  wake();
}

bool Server::flush_writes(const std::shared_ptr<Conn>& conn) {
  // Never hold conn->m across the send(2): dispatcher completion callbacks
  // enqueue under the same mutex, and inference threads must not queue up
  // behind socket I/O. Holding a pointer into the front frame without the
  // lock is safe because only this (loop) thread ever pops or clears the
  // queue, and deque push_back does not invalidate references to existing
  // elements.
  std::size_t completed = 0;
  bool ok = true;
  for (;;) {
    const std::uint8_t* data = nullptr;
    std::size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lk(conn->m);
      if (conn->wq.empty()) break;
      const std::vector<std::uint8_t>& front = conn->wq.front();
      data = front.data() + conn->wq_front_off;
      remaining = front.size() - conn->wq_front_off;
    }
    ssize_t n = 0;
    try {
      n = conn->stream.write_some(data, remaining);
    } catch (const TransportError&) {
      ok = false;  // peer vanished
      break;
    }
    if (n < 0) break;  // socket buffer full; POLLOUT will resume us
    {
      std::lock_guard<std::mutex> lk(conn->m);
      conn->wq_front_off += static_cast<std::size_t>(n);
      conn->wq_bytes -= static_cast<std::size_t>(n);
      if (conn->wq_front_off == conn->wq.front().size()) {
        conn->wq.pop_front();
        conn->wq_front_off = 0;
        ++completed;
      }
    }
    conn->last_progress = Clock::now();
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lk(m_);
    counters_.frames_out += completed;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::uint64_t Client::send(std::span<const double> x) {
  if (x.size() != model_->input_dim()) {
    throw std::invalid_argument("serve::Client: sample size != model input_dim");
  }
  Frame frame;
  frame.version = model_name_.empty() ? kProtocolV1 : kProtocolV2;
  frame.type = FrameType::kRequest;
  frame.request_id = next_id_++;
  frame.model = model_name_;
  frame.payload.reserve(x.size());
  for (const double v : x) frame.payload.push_back(model_->format().from_double(v));
  write_frame(stream_, frame);
  awaiting_.insert(frame.request_id);
  return frame.request_id;
}

Reply Client::receive(std::uint64_t id) {
  if (const auto it = buffered_.find(id); it != buffered_.end()) {
    Reply reply = std::move(it->second);
    buffered_.erase(it);
    return reply;
  }
  if (awaiting_.find(id) == awaiting_.end()) {
    throw std::invalid_argument("serve::Client: receive() for an id never sent or already received");
  }
  for (;;) {
    std::optional<Frame> frame = read_frame(stream_);
    if (!frame) throw TransportError("serve::Client: server closed the connection");
    if (frame->type != FrameType::kResponse) {
      throw ProtocolError("serve::Client: server sent a non-response frame");
    }
    awaiting_.erase(frame->request_id);
    if (frame->request_id == id) {
      return Reply{frame->status, std::move(frame->payload)};
    }
    // A response for a different pipelined request: park it for its
    // receive(). Out-of-order arrival is normal with dispatchers >= 2.
    buffered_[frame->request_id] = Reply{frame->status, std::move(frame->payload)};
  }
}

std::vector<double> Client::forward(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  std::vector<double> scores;
  if (!reply.ok()) return scores;
  scores.reserve(reply.bits.size());
  for (const std::uint32_t b : reply.bits) scores.push_back(model_->format().to_double(b));
  return scores;
}

int Client::predict(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  if (!reply.ok() || reply.bits.empty()) return -1;
  // Same recurrence as runtime::Model::readout_argmax: first strictly
  // greatest decoded score wins, so served predictions match Session ones.
  int best = 0;
  double best_score = model_->format().to_double(reply.bits[0]);
  for (std::size_t i = 1; i < reply.bits.size(); ++i) {
    const double score = model_->format().to_double(reply.bits[i]);
    if (score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

void Client::close() { stream_.shutdown_write(); }

Client connect_tcp(std::uint16_t port, std::shared_ptr<const runtime::Model> model,
                   std::string model_name) {
  if (!model) throw std::invalid_argument("serve::connect_tcp: null model");
  if (model_name.size() > kMaxModelNameBytes) {
    // Catch the configuration mistake here, not as a ProtocolError from the
    // first send().
    throw std::invalid_argument("serve::connect_tcp: model name exceeds kMaxModelNameBytes");
  }
  return Client(std::move(model), tcp_connect(port), std::move(model_name));
}

}  // namespace dp::serve
