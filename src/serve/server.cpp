#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace dp::serve {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(std::shared_ptr<const runtime::Model> model, ServerOptions opts)
    : model_(model),
      batcher_(std::move(model), opts.batcher),
      write_timeout_(opts.write_timeout) {}

Server::~Server() { stop(); }

Client Server::connect() {
  auto [server_end, client_end] = local_stream_pair();
  if (write_timeout_.count() > 0) server_end.set_send_timeout(write_timeout_);
  std::lock_guard<std::mutex> lk(m_);
  if (stopped_) throw std::runtime_error("serve::Server: connect() after stop()");
  prune_dead_connections_locked();
  Connection& conn = connections_.emplace_back();
  conn.stream = std::move(server_end);
  conn.reader = std::thread([this, &conn] { reader_main(conn); });
  ++connections_total_;
  return Client(model_, std::move(client_end));
}

void Server::prune_dead_connections_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    // Safe to destroy only once the reader returned AND every batcher
    // callback holding a reference to this Connection has fired (the
    // decrement is the callback's last touch of it).
    if (it->reader_done.load() && it->outstanding.load() == 0) {
      it->reader.join();
      it = connections_.erase(it);  // FdStream destructor closes the fd
    } else {
      ++it;
    }
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Drain first: every already-accepted request gets its response written
  // while the connections are still open. Readers blocked on a live client
  // keep running; requests they submit from here on get kShutdown replies.
  batcher_.shutdown();
  for (Connection& conn : connections_) conn.stream.shutdown_both();
  for (Connection& conn : connections_) {
    if (conn.reader.joinable()) conn.reader.join();
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.batcher = batcher_.stats();
  std::lock_guard<std::mutex> lk(m_);
  s.connections = connections_total_;
  s.frames_in = frames_in_;
  s.frames_out = frames_out_;
  s.bad_frames = bad_frames_;
  s.bad_requests = bad_requests_;
  return s;
}

void Server::respond(Connection& conn, std::uint64_t id, Status status,
                     std::span<const std::uint32_t> bits) {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.status = status;
  frame.request_id = id;
  frame.payload.assign(bits.begin(), bits.end());
  try {
    std::lock_guard<std::mutex> wl(conn.write_m);
    write_frame(conn.stream, frame);
  } catch (const TransportError&) {
    // Client gone or not reading (send timeout): drop the connection so
    // every later write (and its parked reader) fails fast instead of each
    // burning another timeout.
    conn.stream.shutdown_both();
    return;
  }
  std::lock_guard<std::mutex> lk(m_);
  ++frames_out_;
}

void Server::reader_main(Connection& conn) {
  // On every exit path, mark the reader finished so prune/stop know this
  // Connection only awaits its in-flight callbacks.
  struct DoneFlag {
    std::atomic<bool>& flag;
    ~DoneFlag() { flag.store(true); }
  } done{conn.reader_done};

  const std::size_t dim = model_->input_dim();
  const num::Format& fmt = model_->format();
  std::vector<double> x(dim);
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(conn.stream);
    } catch (const ProtocolError&) {
      // Un-resyncable on a byte stream: count it and drop the connection.
      {
        std::lock_guard<std::mutex> lk(m_);
        ++bad_frames_;
      }
      conn.stream.shutdown_both();
      return;
    } catch (const TransportError&) {
      return;  // connection torn down under us (e.g. Server::stop)
    }
    if (!frame) return;  // clean EOF: client closed
    {
      std::lock_guard<std::mutex> lk(m_);
      ++frames_in_;
    }
    if (frame->type != FrameType::kRequest || frame->payload.size() != dim) {
      {
        std::lock_guard<std::mutex> lk(m_);
        ++bad_requests_;
      }
      respond(conn, frame->request_id, Status::kBadRequest, {});
      continue;
    }
    // The wire carries the sample as format bit patterns; the Session
    // quantizes its input, and RNE quantization is idempotent on
    // representable values, so this decode->requantize round trip is exact.
    for (std::size_t i = 0; i < dim; ++i) x[i] = fmt.to_double(frame->payload[i]);
    const std::uint64_t id = frame->request_id;
    conn.outstanding.fetch_add(1);
    batcher_.submit(x, [this, &conn, id](Status status, std::span<const std::uint32_t> bits) {
      respond(conn, id, status, bits);
      conn.outstanding.fetch_sub(1);  // last touch of conn: it may be pruned now
    });
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

std::uint64_t Client::send(std::span<const double> x) {
  if (x.size() != model_->input_dim()) {
    throw std::invalid_argument("serve::Client: sample size != model input_dim");
  }
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = next_id_++;
  frame.payload.reserve(x.size());
  for (const double v : x) frame.payload.push_back(model_->format().from_double(v));
  write_frame(stream_, frame);
  awaiting_.insert(frame.request_id);
  return frame.request_id;
}

Reply Client::receive(std::uint64_t id) {
  if (const auto it = buffered_.find(id); it != buffered_.end()) {
    Reply reply = std::move(it->second);
    buffered_.erase(it);
    return reply;
  }
  if (awaiting_.find(id) == awaiting_.end()) {
    throw std::invalid_argument("serve::Client: receive() for an id never sent or already received");
  }
  for (;;) {
    std::optional<Frame> frame = read_frame(stream_);
    if (!frame) throw TransportError("serve::Client: server closed the connection");
    if (frame->type != FrameType::kResponse) {
      throw ProtocolError("serve::Client: server sent a non-response frame");
    }
    awaiting_.erase(frame->request_id);
    if (frame->request_id == id) {
      return Reply{frame->status, std::move(frame->payload)};
    }
    // A response for a different pipelined request: park it for its
    // receive(). Out-of-order arrival is normal with dispatchers >= 2.
    buffered_[frame->request_id] = Reply{frame->status, std::move(frame->payload)};
  }
}

std::vector<double> Client::forward(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  std::vector<double> scores;
  if (!reply.ok()) return scores;
  scores.reserve(reply.bits.size());
  for (const std::uint32_t b : reply.bits) scores.push_back(model_->format().to_double(b));
  return scores;
}

int Client::predict(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  if (!reply.ok() || reply.bits.empty()) return -1;
  // Same recurrence as runtime::Model::readout_argmax: first strictly
  // greatest decoded score wins, so served predictions match Session ones.
  int best = 0;
  double best_score = model_->format().to_double(reply.bits[0]);
  for (std::size_t i = 1; i < reply.bits.size(); ++i) {
    const double score = model_->format().to_double(reply.bits[i]);
    if (score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

void Client::close() { stream_.shutdown_write(); }

}  // namespace dp::serve
