#pragma once
// serve::ModelRegistry — the multi-model heart of the serving stack.
//
// A registry maps names to entries, each owning an immutable runtime::Model
// plus the DynamicBatcher (and therefore the dispatcher Sessions) that
// serves it. This is what turns one server into the paper's flagship
// multi-scenario workload: several format variants of the same network —
// e.g. posit<8,0> vs fixed<8,7> Iris models — served side by side, each
// request routed by the protocol-v2 model-name field (v1 frames and empty
// names go to the *default* entry, which is the first ever loaded unless
// set_default() changed it).
//
// Hot load/swap/unload is atomic with respect to routing and never drops an
// in-flight request:
//
//   1. acquire() resolves a name to an entry and pins it, under the registry
//      lock, returning a RAII Lease; the caller submits through the lease.
//   2. load() over an existing name (a swap) and unload() first replace /
//      remove the map entry under that same lock — after which no new
//      acquire can reach the old entry — then wait until every outstanding
//      lease on it is released, and only then drain its batcher
//      (DynamicBatcher::shutdown flushes every accepted request through a
//      Session before returning, so all of them get real kOk responses).
//
// The pin is what closes the lookup→submit race: a request that resolved
// the old entry a nanosecond before the swap still lands in the old batcher
// *before* its drain begins, and is answered from the old model. Requests
// resolved after the swap see the new model. Nothing in between is
// possible, which is the invariant tests/serve/registry_test.cpp and the
// hot-swap-under-load test in tcp_server_test.cpp pin down.
//
// Threading contract: every method is safe from any thread. Leases are
// move-only values owned by one thread at a time (the server's event loop
// holds one only across a submit call). The registry must outlive its
// leases. A registry belongs to ONE serve::Server at a time: Server::stop()
// (and therefore ~Server) drains it via shutdown_all(), after which it
// routes nothing and refuses further loads — hand each Server its own
// registry.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <vector>

#include "runtime/model.hpp"
#include "serve/batcher.hpp"

namespace dp::serve {

class ModelRegistry {
 public:
  /// One registry entry as the request path sees it: the model (for
  /// dimension/format checks) and the batcher(s) to submit into. A registry
  /// constructed with `lanes` > 1 gives every entry that many independent
  /// admission lanes — identical DynamicBatchers over the one shared model —
  /// so N server shards can submit without contending on a single admission
  /// lock. `batcher` is lane 0, kept as a plain member so single-lane callers
  /// (and the existing tests) read naturally; lane(i) is the general form.
  struct Entry {
    Entry(std::string name, std::shared_ptr<const runtime::Model> model,
          const BatcherOptions& opts, std::size_t lanes = 1)
        : name(std::move(name)), model(std::move(model)), batcher(this->model, opts) {
      for (std::size_t i = 1; i < lanes; ++i) {
        extra_.push_back(std::make_unique<DynamicBatcher>(this->model, opts));
      }
    }

    const std::string name;
    const std::shared_ptr<const runtime::Model> model;
    DynamicBatcher batcher;  ///< lane 0

    /// Admission lanes on this entry (>= 1).
    std::size_t lanes() const { return 1 + extra_.size(); }
    /// Lane i's batcher; i wraps modulo lanes(), so a shard may index by its
    /// own number without knowing the registry's lane count.
    DynamicBatcher& lane(std::size_t i) {
      const std::size_t k = i % lanes();
      return k == 0 ? batcher : *extra_[k - 1];
    }

   private:
    friend class ModelRegistry;
    std::vector<std::unique_ptr<DynamicBatcher>> extra_;  // lanes 1..N-1
    std::size_t pinned_ = 0;  // outstanding leases; guarded by the registry mutex
  };

  /// RAII pin on one entry (see acquire()). An invalid lease (operator bool
  /// false) means the name resolved to nothing.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& other) noexcept
        : registry_(other.registry_), entry_(std::move(other.entry_)) {
      other.registry_ = nullptr;
      other.entry_.reset();
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        registry_ = other.registry_;
        entry_ = std::move(other.entry_);
        other.registry_ = nullptr;
        other.entry_.reset();
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    explicit operator bool() const { return entry_ != nullptr; }
    Entry* operator->() const { return entry_.get(); }
    Entry& operator*() const { return *entry_; }

    /// Unpin early (idempotent; the destructor calls it).
    void release();

   private:
    friend class ModelRegistry;
    Lease(ModelRegistry* registry, std::shared_ptr<Entry> entry)
        : registry_(registry), entry_(std::move(entry)) {}

    ModelRegistry* registry_ = nullptr;
    std::shared_ptr<Entry> entry_;
  };

  /// Registry-level lifecycle counters (stats() gives the per-entry view).
  struct Counters {
    std::uint64_t loads = 0;    ///< load() calls that created a new name
    std::uint64_t swaps = 0;    ///< load() calls that replaced an entry
    std::uint64_t unloads = 0;  ///< unload() calls that removed one
  };

  /// `lanes` is the per-entry admission-lane count applied to every load()
  /// (0 is clamped to 1). The sharded Server sizes this to its shard count.
  explicit ModelRegistry(std::size_t lanes = 1) : lanes_(lanes == 0 ? 1 : lanes) {}
  ~ModelRegistry();

  /// Admission lanes every entry is built with.
  std::size_t lanes() const { return lanes_; }

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Load a model under `name`, or atomically replace (hot-swap) the entry
  /// already there — the old entry finishes every in-flight request on the
  /// old model before it is released (see the header comment). The first
  /// load becomes the default entry. Throws std::invalid_argument on a null
  /// model, a name longer than the protocol's kMaxModelNameBytes, or a
  /// swap/reload that changes the name's format or input/output dimensions
  /// — enforced even across unload()+load(), because clients quantize with
  /// the format captured at connect and a new format is a new name — and
  /// std::runtime_error after shutdown_all().
  void load(const std::string& name, std::shared_ptr<const runtime::Model> model,
            BatcherOptions opts = {});

  /// load() from a shipped artifact file: the hot-reload spelling operators
  /// actually use. runtime::Model::load reads both the "dpnet-quant" text
  /// format and the compressed ".dpnetz" container transparently, so a fleet
  /// can switch artifact formats without touching its reload tooling. Same
  /// guarantees and exceptions as load(), plus std::runtime_error on an
  /// unreadable or malformed file.
  void load_file(const std::string& name, const std::string& path,
                 BatcherOptions opts = {}) {
    load(name, runtime::Model::load(path), std::move(opts));
  }

  /// Drain and remove one entry, by its explicit name ("" is a read-side
  /// route alias, not a loadable or unloadable name). Returns false if the
  /// name is unknown. If the default entry is unloaded the default becomes
  /// unset until the next load() or set_default().
  bool unload(const std::string& name);

  /// Resolve and pin an entry: empty name = the default entry. The returned
  /// lease keeps the entry fully serviceable (a concurrent swap/unload waits
  /// for it) — hold it only across a submit, not across a response wait.
  Lease acquire(const std::string& name);

  /// Route a name to the default entry's name. Empty while nothing is loaded.
  std::string default_name() const;
  /// Make `name` the default (v1 / empty-name) route. Throws
  /// std::invalid_argument if the name is unknown.
  void set_default(const std::string& name);

  /// Whether `name` routes to an entry (empty name = default, like
  /// acquire/model/stats).
  bool has(const std::string& name) const;
  /// Loaded names, sorted (the map order).
  std::vector<std::string> names() const;
  /// The model under `name` (empty name = default); nullptr if unknown.
  std::shared_ptr<const runtime::Model> model(const std::string& name) const;
  /// Batcher stats of one entry, aggregated across its lanes: counters and
  /// gauges are summed, and the wait percentiles are recomputed over the
  /// union of the lanes' sliding windows (percentiles of a union, never an
  /// average of percentiles). nullopt if unknown (empty name = default).
  std::optional<BatcherStats> stats(const std::string& name) const;
  Counters counters() const;

  /// Drain every entry and refuse further loads. Idempotent; the destructor
  /// calls it. Requests routed afterwards resolve to nothing, but the
  /// entries themselves stay readable — model() and stats() keep returning
  /// the final state, so counters survive an orderly Server::stop().
  void shutdown_all();

 private:
  /// What the reload guard remembers about a route: a later load() of the
  /// same name (and any repointing of the default route) is held to the
  /// same format/shape as what clients may have captured at connect.
  struct RetiredSignature {
    num::Format format;         ///< input (request-encode) format
    num::Format output_format;  ///< reply-decode format; == format when uniform
    std::size_t input_dim = 0;
    std::size_t output_dim = 0;
  };
  static RetiredSignature signature_of(const runtime::Model& m);
  static bool same_signature(const RetiredSignature& a, const RetiredSignature& b);
  /// Map lookup honouring the empty-name = default rule. Caller holds m_.
  std::map<std::string, std::shared_ptr<Entry>>::const_iterator find_locked(
      const std::string& name) const;
  /// Wait until no lease pins `entry`, then return with m_ NOT held so the
  /// caller can run the (blocking) batcher drain outside the lock.
  void wait_unpinned(std::unique_lock<std::mutex>& lk, const std::shared_ptr<Entry>& entry);

  mutable std::mutex m_;
  std::condition_variable cv_;  // signalled on lease release
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  // Signatures of unloaded names — unload()+load() must not bypass the
  // swap guard. Signatures, not Models: retiring many large models must
  // not pin their weights for the registry's lifetime.
  std::map<std::string, RetiredSignature> retired_;
  // The default route is a client-visible contract exactly like a name: v1
  // / empty-name clients quantize with the format they captured while it
  // pointed at some entry. Once established it pins the route's signature:
  // set_default() to an incompatible entry throws, and the auto-assignment
  // of a new default on load() skips incompatible candidates (no route —
  // kNotFound — is safe; a wrong-format route is silent corruption).
  std::optional<RetiredSignature> default_sig_;
  std::string default_;
  bool shutdown_ = false;
  Counters counters_;
  const std::size_t lanes_ = 1;
};

}  // namespace dp::serve
