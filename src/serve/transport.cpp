#include "serve/transport.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dp::serve {

namespace {

[[noreturn]] void throw_errno(const char* op) {
  throw TransportError(std::string("serve transport: ") + op + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: not fatal if the kernel refuses (e.g. not a TCP socket).
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

FdStream::~FdStream() { close(); }

FdStream& FdStream::operator=(FdStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdStream::write_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer must become an exception on the writing
    // thread (a batcher dispatcher), never a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer has stopped draining its socket.
        throw TransportError("serve transport: send timed out (peer not reading)");
      }
      throw_errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool FdStream::read_exact(void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw TransportError("serve transport: stream ended mid-buffer");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void FdStream::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

ssize_t FdStream::read_some(void* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    // A peer that vanished mid-conversation (ECONNRESET and friends) is a
    // transport error; the event loop maps it to "drop this connection".
    throw_errno("recv");
  }
}

ssize_t FdStream::write_some(const void* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    throw_errno("send");
  }
}

void FdStream::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void FdStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<FdStream, FdStream> local_stream_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) throw_errno("socketpair");
  return {FdStream(fds[0]), FdStream(fds[1])};
}

// ---------------------------------------------------------------------------
// LocalTransport
// ---------------------------------------------------------------------------

LocalTransport::LocalTransport() {
  auto [r, w] = local_stream_pair();
  signal_r_ = std::move(r);
  signal_w_ = std::move(w);
  signal_r_.set_nonblocking(true);
  signal_w_.set_nonblocking(true);
}

LocalTransport::~LocalTransport() = default;

void LocalTransport::push(FdStream conn) {
  {
    std::lock_guard<std::mutex> lk(m_);
    pending_.push_back(std::move(conn));
  }
  // One readiness byte per queued connection; accept() consumes it. If the
  // signal buffer is somehow full the loop is awake anyway — never block.
  const char byte = 1;
  (void)signal_w_.write_some(&byte, 1);
}

FdStream LocalTransport::accept() {
  char byte = 0;
  (void)signal_r_.read_some(&byte, 1);
  std::lock_guard<std::mutex> lk(m_);
  if (pending_.empty()) return FdStream();
  FdStream conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(std::uint16_t port, int backlog, bool reuseport) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  listen_ = FdStream(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  listen_.set_nonblocking(true);
}

FdStream TcpTransport::accept() {
  for (;;) {
    const int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return FdStream(fd);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return FdStream();  // nothing (or a ghost) pending right now
    }
    // Resource exhaustion (EMFILE/ENFILE/...): the pending connection stays
    // in the backlog keeping the listener readable, so "return nothing"
    // would spin a level-triggered poll loop at 100% CPU. Throw instead and
    // let the caller back the listener out of its poll set for a while.
    throw_errno("accept");
  }
}

FdStream tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  FdStream stream(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINTR && errno != EISCONN) throw_errno("connect");
    // A signal interrupted connect(): POSIX says the attempt keeps
    // completing asynchronously and re-calling connect() yields EALREADY,
    // not progress. Wait for writability and read the real outcome from
    // SO_ERROR instead.
    pollfd p{fd, POLLOUT, 0};
    while (::poll(&p, 1, -1) < 0) {
      if (errno != EINTR) throw_errno("poll(connect)");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno("connect");
    }
  }
  set_nodelay(fd);
  return stream;
}

}  // namespace dp::serve
