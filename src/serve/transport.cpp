#include "serve/transport.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dp::serve {

namespace {

[[noreturn]] void throw_errno(const char* op) {
  throw TransportError(std::string("serve transport: ") + op + ": " + std::strerror(errno));
}

}  // namespace

FdStream::~FdStream() { close(); }

FdStream& FdStream::operator=(FdStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdStream::write_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a vanished peer must become an exception on the writing
    // thread (a batcher dispatcher), never a process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer has stopped draining its socket.
        throw TransportError("serve transport: send timed out (peer not reading)");
      }
      throw_errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool FdStream::read_exact(void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw TransportError("serve transport: stream ended mid-buffer");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void FdStream::set_send_timeout(std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

void FdStream::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void FdStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void FdStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<FdStream, FdStream> local_stream_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) throw_errno("socketpair");
  return {FdStream(fds[0]), FdStream(fds[1])};
}

}  // namespace dp::serve
