#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/percentile.hpp"

namespace dp::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::shared_ptr<const runtime::Model> require_model(
    std::shared_ptr<const runtime::Model> model) {
  if (!model) throw std::invalid_argument("serve::DynamicBatcher: null model");
  return model;
}

BatcherOptions validate(BatcherOptions opts) {
  if (opts.max_batch == 0) {
    throw std::invalid_argument("serve::DynamicBatcher: max_batch must be >= 1");
  }
  if (opts.queue_capacity == 0) {
    throw std::invalid_argument("serve::DynamicBatcher: queue_capacity must be >= 1");
  }
  if (opts.dispatchers == 0) {
    throw std::invalid_argument("serve::DynamicBatcher: dispatchers must be >= 1");
  }
  if (opts.max_wait.count() < 0) {
    throw std::invalid_argument("serve::DynamicBatcher: max_wait must be >= 0");
  }
  return opts;
}

}  // namespace

DynamicBatcher::DynamicBatcher(std::shared_ptr<const runtime::Model> model,
                               BatcherOptions opts)
    : model_(require_model(std::move(model))),
      opts_(validate(opts)),
      tile_(opts_.tile_align != 0 ? opts_.tile_align
                                  : std::max<std::size_t>(1, model_->preferred_tile())) {
  pending_x_.reserve(opts_.queue_capacity * model_->input_dim());
  pending_.reserve(opts_.queue_capacity);
  wait_window_.reserve(kWaitWindow);
  dispatchers_.reserve(opts_.dispatchers);
  for (std::size_t i = 0; i < opts_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatcher_main(i); });
  }
}

DynamicBatcher::~DynamicBatcher() { shutdown(); }

void DynamicBatcher::submit(std::span<const double> x, Callback cb, Deadline deadline) {
  if (x.size() != model_->input_dim()) {
    throw std::invalid_argument("serve::DynamicBatcher: sample size != model input_dim");
  }
  const Clock::time_point shed_at = deadline.value_or(Clock::time_point::max());
  {
    std::unique_lock<std::mutex> lk(m_);
    if (stop_) {
      ++rejected_;
      lk.unlock();
      cb(Status::kShutdown, {});
      return;
    }
    const Clock::time_point now = Clock::now();
    if (shed_at <= now) {
      // Dead on arrival (the client's budget was already spent crossing the
      // wire): complete inline, never occupy queue space.
      ++deadline_exceeded_;
      lk.unlock();
      cb(Status::kDeadlineExceeded, {});
      return;
    }
    if (depth_locked() >= opts_.queue_capacity) {
      ++rejected_;
      lk.unlock();
      cb(Status::kQueueFull, {});
      return;
    }
    pending_x_.insert(pending_x_.end(), x.begin(), x.end());
    pending_.push_back({std::move(cb), now, shed_at});
    ++accepted_;
  }
  cv_.notify_one();
}

std::future<Reply> DynamicBatcher::submit(std::span<const double> x) {
  auto promise = std::make_shared<std::promise<Reply>>();
  std::future<Reply> fut = promise->get_future();
  submit(x, [promise](Status s, std::span<const std::uint32_t> bits) {
    promise->set_value(Reply{s, {bits.begin(), bits.end()}});
  });
  return fut;
}

void DynamicBatcher::shutdown() {
  // Claim the dispatcher threads under the lock: exactly one caller joins
  // them even if shutdown() is invoked from several threads at once.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
    to_join.swap(dispatchers_);
  }
  cv_.notify_all();
  for (std::thread& t : to_join) t.join();
}

BatcherStats DynamicBatcher::stats() const {
  std::vector<double> window;
  BatcherStats s;
  {
    std::lock_guard<std::mutex> lk(m_);
    s.accepted = accepted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.batches = batches_;
    s.queue_depth = depth_locked();
    s.in_flight = in_flight_;
    s.mean_occupancy =
        batches_ == 0 ? 0 : static_cast<double>(completed_) / static_cast<double>(batches_);
    window = wait_window_;
  }
  std::sort(window.begin(), window.end());
  s.wait_p50_us = core::percentile(window, 50);
  s.wait_p99_us = core::percentile(window, 99);
  s.wait_p999_us = core::percentile(window, 99.9);
  return s;
}

void DynamicBatcher::wait_samples(std::vector<double>& out) const {
  std::lock_guard<std::mutex> lk(m_);
  out.insert(out.end(), wait_window_.begin(), wait_window_.end());
}

void DynamicBatcher::dispatcher_main(std::size_t index) {
  // Each dispatcher owns a private Session: per-slot Scratch state is never
  // shared across dispatchers, and the Model is immutable, so concurrent
  // micro-batches need no locking past the carve. Spreading an index over
  // nothing: every Session is identical; the index only names the thread.
  (void)index;
  runtime::Session session(model_, {opts_.session_threads, opts_.shared_pool});
  const std::size_t dim = model_->input_dim();
  const std::size_t out_dim = model_->output_dim();

  std::vector<double> batch_x;      // carved live rows, contiguous row-major
  std::vector<Pending> batch_meta;  // their callbacks, same order
  std::vector<Pending> shed_meta;   // carved rows whose deadline has passed
  std::vector<std::uint32_t> out;   // flush output, reused across flushes

  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    cv_.wait(lk, [&] { return stop_ || depth_locked() > 0; });
    if (depth_locked() == 0) {
      if (stop_) return;  // drained: every accepted request was flushed
      continue;
    }
    // Flush decision: size trigger, deadline trigger, shutdown drain — or
    // the front request's shed deadline, so an expired request is answered
    // kDeadlineExceeded promptly instead of parking until max_wait.
    bool deadline_due = stop_;
    if (depth_locked() < opts_.max_batch && !stop_) {
      const auto flush_at = std::min(pending_[head_].enqueued + opts_.max_wait,
                                     pending_[head_].deadline);
      if (Clock::now() < flush_at) {
        // Sleep until the oldest request's deadline; a submit that reaches
        // the size trigger (or shutdown) notifies and re-evaluates sooner.
        cv_.wait_until(lk, flush_at);
        continue;
      }
      deadline_due = true;
    }

    // Carve up to max_batch rows off the queue front while holding the lock
    // (memcpy of doubles + callback moves; the inference runs unlocked).
    // Rows whose shed deadline has passed are split off here — they never
    // reach the Session — and the carve only advances head_; compaction
    // below is amortized O(1)/row.
    std::size_t take = std::min(depth_locked(), opts_.max_batch);
    if (!deadline_due && tile_ > 1 && take > tile_) {
      // Size-triggered burst carve: trim to whole kernel tiles so the
      // blocked matmul never sees a ragged tail mid-burst. The carve always
      // starts at the queue front, so trimming only defers TAIL rows — the
      // oldest request still leaves now, and a deadline/shutdown flush (the
      // deadline_due path) is never trimmed, preserving max_wait even when
      // fewer than tile_ rows are pending.
      const std::size_t aligned = take - take % tile_;
      if (aligned != 0) take = aligned;
    }
    const auto now = Clock::now();
    batch_x.clear();
    batch_meta.clear();
    shed_meta.clear();
    for (std::size_t i = 0; i < take; ++i) {
      Pending& p = pending_[head_ + i];
      if (p.deadline <= now) {
        shed_meta.push_back(std::move(p));
        continue;
      }
      const auto row = pending_x_.begin() + static_cast<std::ptrdiff_t>((head_ + i) * dim);
      batch_x.insert(batch_x.end(), row, row + static_cast<std::ptrdiff_t>(dim));
      batch_meta.push_back(std::move(p));
    }
    head_ += take;
    if (head_ == pending_.size()) {
      pending_.clear();
      pending_x_.clear();
      head_ = 0;
    } else if (head_ >= opts_.queue_capacity) {
      pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(head_));
      pending_x_.erase(pending_x_.begin(),
                       pending_x_.begin() + static_cast<std::ptrdiff_t>(head_ * dim));
      head_ = 0;
    }
    for (const Pending& p : batch_meta) {
      const std::chrono::duration<double, std::micro> wait = now - p.enqueued;
      if (wait_window_.size() < kWaitWindow) {
        wait_window_.push_back(wait.count());
      } else {
        wait_window_[wait_next_] = wait.count();
      }
      wait_next_ = (wait_next_ + 1) % kWaitWindow;
    }
    const std::size_t live = batch_meta.size();
    deadline_exceeded_ += shed_meta.size();
    if (live > 0) {
      ++batches_;
      ++in_flight_;
    }
    const bool more = depth_locked() > 0;
    lk.unlock();
    // Rows still pending (a burst larger than max_batch): hand them to a
    // sibling dispatcher so micro-batches overlap instead of queueing.
    if (more) cv_.notify_one();

    // Shed requests first: their callers' budgets are already gone, and the
    // answer must not queue behind a whole batch's inference.
    for (Pending& p : shed_meta) p.cb(Status::kDeadlineExceeded, {});
    shed_meta.clear();
    if (live == 0) {
      lk.lock();
      continue;
    }

    out.resize(live * out_dim);
    Status status = Status::kOk;
    try {
      session.forward_bits_into(runtime::BatchView(batch_x, dim), out);
    } catch (...) {
      // A model/session failure must not strand the requests; surface it as
      // a per-request error status. (With dimensions validated at submit,
      // this path is unreachable in practice.)
      status = Status::kBadRequest;
    }
    // Account completion BEFORE the callbacks fire: anyone synchronized by a
    // callback/future (tests, a client that saw its response) must find the
    // counters already consistent in stats().
    lk.lock();
    completed_ += live;
    --in_flight_;
    lk.unlock();
    for (std::size_t i = 0; i < live; ++i) {
      if (status == Status::kOk) {
        batch_meta[i].cb(status,
                         std::span<const std::uint32_t>(out).subspan(i * out_dim, out_dim));
      } else {
        batch_meta[i].cb(status, {});
      }
    }
    batch_meta.clear();
    lk.lock();
  }
}

}  // namespace dp::serve
