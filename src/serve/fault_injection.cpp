#include "serve/fault_injection.hpp"

#include <algorithm>
#include <random>
#include <thread>
#include <utility>

namespace dp::serve {

/// One spliced connection: the relay's end of the caller-facing socketpair,
/// the real stream, and the two pump threads (one per direction). The pumps
/// only ever shutdown() the fds; close happens in ~Relay after both joined,
/// so a pump never races a close of an fd it is blocked on.
struct FaultInjector::Relay {
  FdStream outer;  // relay side of the socketpair handed to the caller
  FdStream inner;  // the real peer stream
  std::thread c2i, i2c;
};

FaultInjector::FaultInjector(FaultProfile profile) : profile_(std::move(profile)) {}

FaultInjector::~FaultInjector() {
  std::vector<std::unique_ptr<Relay>> relays;
  {
    std::lock_guard<std::mutex> lk(m_);
    relays.swap(relays_);
  }
  // Sever first, join second: a pump blocked in recv() on either fd wakes
  // with EOF/reset the moment its socket is shut down.
  for (const auto& r : relays) {
    r->outer.shutdown_both();
    r->inner.shutdown_both();
  }
  for (const auto& r : relays) {
    if (r->c2i.joinable()) r->c2i.join();
    if (r->i2c.joinable()) r->i2c.join();
  }
}

FdStream FaultInjector::wrap(FdStream inner) {
  // The pumps use blocking I/O; un-set any non-blocking mode the stream's
  // previous owner left on it.
  inner.set_nonblocking(false);
  auto [caller_end, relay_end] = local_stream_pair();
  auto relay = std::make_unique<Relay>();
  relay->outer = std::move(relay_end);
  relay->inner = std::move(inner);
  Relay* r = relay.get();
  std::uint64_t base = 0;
  {
    std::lock_guard<std::mutex> lk(m_);
    // Two RNG streams per connection (one per direction), disjoint across
    // connections, derived only from the profile seed: a failing seed
    // replays the exact same fault schedule.
    base = profile_.seed * 0x9E3779B97F4A7C15ull + (++next_conn_) * 2;
    ++counters_.wrapped;
    relays_.push_back(std::move(relay));
  }
  r->c2i = std::thread([this, r, base] { pump(*r, true, base); });
  r->i2c = std::thread([this, r, base] { pump(*r, false, base + 1); });
  return std::move(caller_end);
}

FdStream FaultInjector::connect(std::uint16_t port) {
  if (profile_.drop_connect_probability > 0) {
    std::uint64_t attempt = 0;
    {
      std::lock_guard<std::mutex> lk(m_);
      attempt = ++next_conn_;
    }
    std::mt19937_64 rng(profile_.seed * 0x9E3779B97F4A7C15ull + attempt * 2 + 1);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng) < profile_.drop_connect_probability) {
      {
        std::lock_guard<std::mutex> lk(m_);
        ++counters_.dropped_connects;
      }
      throw TransportError("fault injection: connect dropped");
    }
  }
  return wrap(tcp_connect(port));
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  return counters_;
}

void FaultInjector::pump(Relay& relay, bool client_to_inner, std::uint64_t rng_seed) {
  FdStream& src = client_to_inner ? relay.outer : relay.inner;
  FdStream& dst = client_to_inner ? relay.inner : relay.outer;
  std::mt19937_64 rng(rng_seed);
  const std::size_t max_slice = std::max<std::size_t>(1, profile_.max_slice);
  std::uniform_int_distribution<std::size_t> slice(1, max_slice);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::uint8_t> buf(max_slice);
  for (;;) {
    // Short slices on purpose: the peer sees frame boundaries that never
    // line up with read boundaries, which is what flushes out partial-read
    // and partial-write handling bugs.
    const std::size_t want = slice(rng);
    ssize_t n = 0;
    try {
      n = src.read_some(buf.data(), want);
    } catch (const TransportError&) {
      break;  // reset under us: sever the whole relay below
    }
    if (n == 0) {
      // Clean half-close: propagate it, leave the other direction flowing.
      dst.shutdown_write();
      return;
    }
    if (n < 0) continue;  // spurious wakeup on a blocking fd; retry
    if (profile_.reset_probability > 0 && coin(rng) < profile_.reset_probability) {
      {
        std::lock_guard<std::mutex> lk(m_);
        ++counters_.resets;
      }
      break;  // drop these bytes on the floor and kill the connection
    }
    if (profile_.delay_probability > 0 && coin(rng) < profile_.delay_probability &&
        profile_.max_delay.count() > 0) {
      {
        std::lock_guard<std::mutex> lk(m_);
        ++counters_.delays;
      }
      std::uniform_int_distribution<long long> d(1, profile_.max_delay.count());
      std::this_thread::sleep_for(std::chrono::microseconds(d(rng)));
    }
    try {
      dst.write_all(buf.data(), static_cast<std::size_t>(n));
    } catch (const TransportError&) {
      break;  // receiver gone: sever the whole relay below
    }
  }
  // Hard stop (reset fault or a dead peer): both directions die at once,
  // exactly like a RST — shutdown() only, never close (see Relay).
  relay.outer.shutdown_both();
  relay.inner.shutdown_both();
}

FaultInjectingTransport::FaultInjectingTransport(std::unique_ptr<Transport> inner,
                                                 std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector)) {
  if (!inner_ || !injector_) {
    throw std::invalid_argument("serve::FaultInjectingTransport: null inner/injector");
  }
}

FdStream FaultInjectingTransport::accept() {
  FdStream stream = inner_->accept();
  if (!stream.valid()) return stream;
  return injector_->wrap(std::move(stream));
}

}  // namespace dp::serve
