#pragma once
// The dp::serve wire protocol: length-prefixed, CRC-checked binary frames
// carrying sample payloads as raw network-format bit patterns (posit /
// minifloat / fixed — whatever the served Model was quantized to).
//
// Frame layout (all integers little-endian; full byte table in
// docs/serving.md):
//
//   offset  size  field
//   0       4     magic "DPSV" (bytes 0x44 0x50 0x53 0x56)
//   4       1     version (kProtocolVersion)
//   5       1     frame type (1 = request, 2 = response)
//   6       2     status  (requests send 0; responses carry serve::Status)
//   8       8     request id (client-chosen, echoed verbatim in the response)
//   16      4     payload length in BYTES (= 4 * element count, <= kMaxPayloadBytes)
//   20      N     payload: element count / 4 u32 bit patterns
//   20+N    4     CRC-32 (IEEE 802.3 reflected, poly 0xEDB88320) over bytes [0, 20+N)
//
// A request payload is the input sample, one pattern per feature, already
// quantized into the model's format (Client::send does this with
// Format::from_double — round-to-nearest-even is idempotent on representable
// values, which is what makes served outputs bit-identical to a direct
// runtime::Session call on the same doubles). A response payload is the
// readout activations. Error responses carry an empty payload.
//
// decode() never trusts the peer: magic, version, type, length bound and CRC
// are all checked before any payload byte is interpreted, and a failure is a
// ProtocolError naming the first rule violated. A stream cannot resync after
// a framing error, so the server drops the connection on one.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/transport.hpp"
#include "serve/types.hpp"

namespace dp::serve {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint32_t kFrameMagic = 0x56535044u;  // "DPSV" little-endian
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kTrailerBytes = 4;  // the CRC
/// Admission bound on payload size, enforced before allocation so a
/// corrupted or hostile length field cannot balloon memory.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2 };

/// The bytes arrived but were not a valid frame (bad magic/version/type,
/// oversize or misaligned length, CRC mismatch).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// One decoded frame. `payload` holds bit patterns: request = input features
/// in the model's format, response = readout activations.
struct Frame {
  FrameType type = FrameType::kRequest;
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
  std::vector<std::uint32_t> payload;

  bool operator==(const Frame&) const = default;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `data`. Exposed for
/// tests and for anyone implementing the protocol in another language.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Serialize a frame (header + payload + CRC trailer). Throws ProtocolError
/// if the payload exceeds kMaxPayloadBytes.
std::vector<std::uint8_t> encode(const Frame& frame);

/// Parse one complete frame from `bytes` (which must be exactly one frame).
/// Throws ProtocolError on any violation of the format.
Frame decode(std::span<const std::uint8_t> bytes);

/// Blocking framed write: encode + write_all.
void write_frame(FdStream& stream, const Frame& frame);

/// Blocking framed read. Returns std::nullopt on clean end-of-stream (peer
/// closed between frames); throws ProtocolError on malformed bytes and
/// TransportError if the stream dies mid-frame.
std::optional<Frame> read_frame(FdStream& stream);

}  // namespace dp::serve
