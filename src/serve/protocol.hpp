#pragma once
// The dp::serve wire protocol: length-prefixed, CRC-checked binary frames
// carrying sample payloads as raw network-format bit patterns (posit /
// minifloat / fixed — whatever the served Model was quantized to).
//
// Four frame versions are live (full byte tables in docs/serving.md):
//
//   v1 — the original single-model frame:
//
//     offset  size  field
//     0       4     magic "DPSV" (bytes 0x44 0x50 0x53 0x56)
//     4       1     version = 1 (kProtocolV1)
//     5       1     frame type (1 = request, 2 = response)
//     6       2     status  (requests send 0; responses carry serve::Status)
//     8       8     request id (client-chosen, echoed verbatim in the response)
//     16      4     payload length N in BYTES (= 4 * element count, <= kMaxPayloadBytes)
//     20      N     payload: N/4 u32 bit patterns
//     20+N    4     CRC-32 (IEEE 802.3 reflected, poly 0xEDB88320) over bytes [0, 20+N)
//
//   v2 — identical through offset 19, then a model-name routing block is
//   inserted between the fixed header and the payload:
//
//     offset  size  field
//     0..19         as v1, with version = 2 (kProtocolV2)
//     20      1     model name length M (0..kMaxModelNameBytes)
//     21      M     model name (raw bytes, no terminator)
//     21+M    N     payload
//     21+M+N  4     CRC-32 over bytes [0, 21+M+N)
//
// A v2 request is routed to the registry entry of that name (empty name =
// the default entry, exactly like a v1 frame); an unknown name gets a
// kNotFound response. Responses are always v1 frames — the echoed request id
// is the demux key and needs no name — so a v1-only client never sees a v2
// byte no matter what the server is doing.
//
//   v3 — v2 plus a CRC-covered deadline budget between the fixed header and
//   the name block (v1 and v2 encodings are pinned unchanged, byte for byte):
//
//     offset  size  field
//     0..19         as v1, with version = 3 (kProtocolV3)
//     20      8     deadline budget: microseconds REMAINING for this request
//                   (u64 little-endian; 0 = no deadline)
//     28      1     model name length M (0..kMaxModelNameBytes)
//     29      M     model name
//     29+M    N     payload
//     29+M+N  4     CRC-32 over bytes [0, 29+M+N)
//
// The budget is relative, not an absolute wall-clock instant, so it survives
// clock skew between peers: the server converts it to a steady-clock
// deadline the moment the frame is decoded, and a request whose budget
// expires while queued is shed with kDeadlineExceeded instead of burning a
// dispatcher slot (serve/batcher.hpp). A zero budget means "no deadline" —
// such a frame is routed exactly like a v2 frame.
//
//   v4 — v3 plus a CRC-covered payload-encoding byte between the deadline
//   budget and the name block (v1/v2/v3 encodings stay pinned, byte for
//   byte):
//
//     offset  size  field
//     0..19         as v1, with version = 4 (kProtocolV4)
//     20      8     deadline budget (as v3)
//     28      1     payload encoding (0 = raw patterns, 1 = entropy-coded
//                   block, kPayloadEncoding*; anything else is rejected)
//     29      1     model name length M
//     30      M     model name
//     30+M    N     payload
//     30+M+N  4     CRC-32 over bytes [0, 30+M+N)
//
// Encoding 0 means the payload words are bit patterns exactly as in v1–v3.
// Encoding 1 means they are a codec/payload.hpp block: element count, coded
// byte length, then the range-coded bytes packed LE into u32 words — still
// N % 4 == 0, still inside kMaxPayloadBytes, so every existing frame bound
// and the CRC apply unchanged. Compression is negotiated PER FRAME: the
// server answers a compressed request with a compressed (v4) response and a
// raw request with a raw response, so a client opts in per request and a
// fleet can roll over gradually (docs/compression.md). Error responses are
// always plain v1 regardless of request encoding.
//
// A request payload is the input sample, one pattern per feature, already
// quantized into the target model's format (Client::send does this with
// Format::from_double — round-to-nearest-even is idempotent on representable
// values, which is what makes served outputs bit-identical to a direct
// runtime::Session call on the same doubles). A response payload is the
// readout activations. Error responses carry an empty payload.
//
// decode() never trusts the peer: magic, version, type, length bounds and
// CRC are all checked before any payload byte is interpreted, and a failure
// is a ProtocolError naming the first rule violated. A stream cannot resync
// after a framing error, so the server drops the connection on one.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/transport.hpp"
#include "serve/types.hpp"

namespace dp::serve {

inline constexpr std::uint8_t kProtocolV1 = 1;  ///< single-model frames
inline constexpr std::uint8_t kProtocolV2 = 2;  ///< + model-name routing block
inline constexpr std::uint8_t kProtocolV3 = 3;  ///< + deadline-budget field
inline constexpr std::uint8_t kProtocolV4 = 4;  ///< + payload-encoding byte
/// Size of the v3/v4 deadline-budget field (u64 microseconds remaining).
inline constexpr std::size_t kDeadlineBytes = 8;
/// Values of the v4 payload-encoding byte.
inline constexpr std::uint8_t kPayloadEncodingRaw = 0;
inline constexpr std::uint8_t kPayloadEncodingCodec = 1;
inline constexpr std::uint32_t kFrameMagic = 0x56535044u;  // "DPSV" little-endian
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::size_t kTrailerBytes = 4;  // the CRC
/// Admission bound on payload size, enforced before allocation so a
/// corrupted or hostile length field cannot balloon memory.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
/// Bound on the v2 model-name block (fits the one-byte length field with
/// room to spare; registry names are short identifiers, not paths).
inline constexpr std::size_t kMaxModelNameBytes = 64;

/// kMetricsRequest is the reserved observability frame: a v1 request-shaped
/// frame (type byte 3, status 0, EMPTY payload — the server answers anything
/// else with kBadRequest) whose response is an ordinary kResponse frame
/// carrying the plaintext metrics page as little-endian u32-packed bytes,
/// NUL-padded to a multiple of 4 (Client::metrics() strips the padding). The
/// 24-byte request layout is pinned byte-for-byte by
/// tests/serve/protocol_adversarial_test.cpp.
enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2, kMetricsRequest = 3 };

/// The bytes arrived but were not a valid frame (bad magic/version/type,
/// oversize or misaligned length, oversize name, CRC mismatch).
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// One decoded frame. `payload` holds bit patterns: request = input features
/// in the model's format, response = readout activations. `model` is the
/// v2/v3/v4 routing name; it must be empty on a v1 frame (encode enforces
/// this), and decode leaves it empty for v1 input. `deadline_us` is the
/// v3/v4 deadline budget (microseconds remaining; 0 = none) — encode rejects
/// a nonzero budget on a v1/v2 frame, so the older encodings cannot drift.
/// `payload_encoding` is the v4 byte (kPayloadEncoding*); encode rejects a
/// nonzero value on any older version for the same reason.
struct Frame {
  std::uint8_t version = kProtocolV1;
  FrameType type = FrameType::kRequest;
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
  std::string model;
  std::uint64_t deadline_us = 0;
  std::uint8_t payload_encoding = kPayloadEncodingRaw;
  std::vector<std::uint32_t> payload;

  bool operator==(const Frame&) const = default;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of `data`. Exposed for
/// tests and for anyone implementing the protocol in another language.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Serialize a frame (header [+ deadline budget] [+ encoding byte] [+ name
/// block] + payload + CRC trailer). Throws ProtocolError if the payload
/// exceeds kMaxPayloadBytes, the name exceeds kMaxModelNameBytes, a v1 frame
/// carries a name, a v1/v2 frame carries a deadline budget, a pre-v4 frame
/// carries a nonzero payload encoding, the encoding byte is unknown, or the
/// version is unknown.
std::vector<std::uint8_t> encode(const Frame& frame);

/// Parse one complete frame from `bytes` (which must be exactly one frame).
/// Accepts both versions; throws ProtocolError on any violation.
Frame decode(std::span<const std::uint8_t> bytes);

/// Incremental framing for event-loop readers: inspect the front of `bytes`
/// (a connection's read buffer, possibly holding a partial frame or several
/// frames). Returns std::nullopt when more bytes are needed to complete the
/// first frame; otherwise decodes it and sets `consumed` to its size so the
/// caller can pop it and go again. Throws ProtocolError as decode does —
/// header fields are validated as soon as they are present, so garbage fails
/// fast instead of waiting for a length it promised.
std::optional<Frame> try_extract(std::span<const std::uint8_t> bytes, std::size_t& consumed);

/// Blocking framed write: encode + write_all.
void write_frame(FdStream& stream, const Frame& frame);

/// Blocking framed read (either version). Returns std::nullopt on clean
/// end-of-stream (peer closed between frames); throws ProtocolError on
/// malformed bytes and TransportError if the stream dies mid-frame.
std::optional<Frame> read_frame(FdStream& stream);

}  // namespace dp::serve
