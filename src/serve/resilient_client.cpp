#include "serve/resilient_client.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

namespace dp::serve {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ResilientClient::ResilientClient(std::uint16_t port,
                                 std::shared_ptr<const runtime::Model> model,
                                 std::string model_name, ResilientClientOptions opts)
    : ResilientClient([port] { return tcp_connect(port); }, std::move(model),
                      std::move(model_name), std::move(opts)) {}

ResilientClient::ResilientClient(Dialer dialer, std::shared_ptr<const runtime::Model> model,
                                 std::string model_name, ResilientClientOptions opts)
    : dialer_(std::move(dialer)),
      model_(std::move(model)),
      model_name_(std::move(model_name)),
      opts_(std::move(opts)),
      jitter_rng_(opts_.retry.seed) {
  if (!dialer_) throw std::invalid_argument("serve::ResilientClient: null dialer");
  if (!model_) throw std::invalid_argument("serve::ResilientClient: null model");
  if (opts_.retry.max_attempts == 0) {
    throw std::invalid_argument("serve::ResilientClient: max_attempts must be >= 1");
  }
}

Client& ResilientClient::ensure_connected() {
  if (!client_) {
    // Even a failed dial is a reconnect attempt — the counter answers "how
    // often did this client have to redial", not "how often did it succeed".
    if (ever_dialed_) ++stats_.reconnects;
    ever_dialed_ = true;
    Client client(model_, dialer_(), model_name_);
    ClientOptions copts;
    copts.recv_timeout = opts_.recv_timeout;
    copts.compress = opts_.compress_payloads;
    client.set_options(copts);
    client_.emplace(std::move(client));
  }
  return *client_;
}

void ResilientClient::backoff_sleep(std::size_t retry_index) {
  const RetryPolicy& p = opts_.retry;
  double ms = static_cast<double>(p.initial_backoff.count()) *
              std::pow(p.backoff_multiplier, static_cast<double>(retry_index - 1));
  ms = std::min(ms, static_cast<double>(p.max_backoff.count()));
  if (p.jitter > 0) {
    std::uniform_real_distribution<double> u(std::max(0.0, 1.0 - p.jitter), 1.0);
    ms *= u(jitter_rng_);
  }
  if (ms > 0) std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

Reply ResilientClient::forward_bits(std::span<const double> x) {
  ++stats_.calls;
  const Clock::time_point start = Clock::now();
  // The last definitive server verdict among retryable ones (kOverloaded):
  // returned if every retry keeps earning it, so the caller sees the
  // server's answer rather than a made-up one.
  std::optional<Reply> verdict;
  for (std::size_t attempt = 0; attempt < opts_.retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      backoff_sleep(attempt);
    }
    std::uint64_t budget = 0;
    if (opts_.deadline_budget_us > 0) {
      // Re-derive the budget per attempt: the retry advertises how much of
      // the CALL's budget is left, not the original figure.
      const auto spent =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
      if (static_cast<std::uint64_t>(spent.count()) >= opts_.deadline_budget_us) {
        return Reply{Status::kDeadlineExceeded, {}};
      }
      budget = opts_.deadline_budget_us - static_cast<std::uint64_t>(spent.count());
    }
    try {
      Client& client = ensure_connected();
      const std::uint64_t id = client.send(x, budget);
      Reply reply = client.receive(id);
      if (reply.status == Status::kTimeout) {
        // NOT retried: the request may still be executing and re-issuing it
        // is a budget decision only the caller can make. Reconnect so the
        // orphaned response cannot be demuxed into a later call's reply.
        ++stats_.timeouts;
        client_.reset();
        return reply;
      }
      if (reply.status == Status::kOverloaded) {
        verdict = std::move(reply);
        continue;  // the server asked for backoff + retry — give it both
      }
      return reply;  // definitive: kOk or a non-retryable rejection
    } catch (const TransportError&) {
      // Dial failure or the connection died during the call. Safe to retry:
      // dp inference is a pure function of the request, so a duplicate of a
      // possibly-executed request returns the same bits and changes nothing.
      client_.reset();
      continue;
    }
  }
  ++stats_.failures;
  if (verdict) return *verdict;
  throw TransportError("serve::ResilientClient: retries exhausted without a server verdict");
}

int ResilientClient::predict(std::span<const double> x) {
  const Reply reply = forward_bits(x);
  if (!reply.ok() || reply.bits.empty()) return -1;
  // Same recurrence as Client::predict / runtime::Model::readout_argmax.
  int best = 0;
  double best_score = model_->output_format().to_double(reply.bits[0]);
  for (std::size_t i = 1; i < reply.bits.size(); ++i) {
    const double score = model_->output_format().to_double(reply.bits[i]);
    if (score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

}  // namespace dp::serve
