#pragma once
// Shared vocabulary of the dp::serve subsystem: the per-request completion
// status (which also travels on the wire as the response frame's status
// field) and the Reply a client or future receives. Kept free of any
// batching or transport dependency so both layers can speak it.

#include <cstdint>
#include <vector>

namespace dp::serve {

/// Completion status of one served request. The numeric values are part of
/// the wire protocol (response frame `status` field, docs/serving.md) and
/// must never be reordered.
enum class Status : std::uint16_t {
  kOk = 0,          ///< served; the reply carries the readout bit patterns
  kQueueFull = 1,   ///< rejected at admission: the batcher queue was at capacity
  kShutdown = 2,    ///< rejected: the batcher/server is shutting down
  kBadRequest = 3,  ///< malformed request (e.g. wrong feature count)
  kNotFound = 4,    ///< v2 routing: no registry entry under the requested model name
  kOverloaded = 5,  ///< rejected by admission control (conn / in-flight cap, rate limit)
  kDeadlineExceeded = 6,  ///< shed: the v3 deadline budget expired while queued
  /// Client-side only: the caller's receive timeout elapsed before any
  /// response arrived. Never sent by a server, so it has no wire presence —
  /// the value is reserved here so a Reply can carry it unambiguously.
  kTimeout = 7,
};

const char* to_string(Status s);

/// What a request resolves to: a status plus, when kOk, the readout
/// activations as network-format bit patterns (one per output class) —
/// exactly what runtime::Session::forward_bits returns for the same sample.
struct Reply {
  Status status = Status::kOk;
  std::vector<std::uint32_t> bits;

  bool ok() const { return status == Status::kOk; }
};

}  // namespace dp::serve
