#include "serve/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/percentile.hpp"
#include "serve/protocol.hpp"

namespace dp::serve {

namespace {

/// Every drain path must flush EVERY lane: a multi-lane entry with one
/// undrained lane would strand that lane's accepted requests.
void drain_lanes(ModelRegistry::Entry& entry) {
  for (std::size_t i = 0; i < entry.lanes(); ++i) entry.lane(i).shutdown();
}

}  // namespace

ModelRegistry::RetiredSignature ModelRegistry::signature_of(const runtime::Model& m) {
  return RetiredSignature{m.input_format(), m.output_format(), m.input_dim(),
                          m.output_dim()};
}

bool ModelRegistry::same_signature(const RetiredSignature& a, const RetiredSignature& b) {
  // Both wire formats are part of the contract clients capture at connect:
  // the input format fixes how they encode requests, the output format how
  // they decode replies — a swap may change neither (a mixed-precision
  // reload must keep both endpoints even if interior layers move).
  return a.format == b.format && a.output_format == b.output_format &&
         a.input_dim == b.input_dim && a.output_dim == b.output_dim;
}

void ModelRegistry::Lease::release() {
  if (registry_ == nullptr || entry_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(registry_->m_);
    --entry_->pinned_;
  }
  registry_->cv_.notify_all();
  registry_ = nullptr;
  entry_.reset();
}

ModelRegistry::~ModelRegistry() { shutdown_all(); }

std::map<std::string, std::shared_ptr<ModelRegistry::Entry>>::const_iterator
ModelRegistry::find_locked(const std::string& name) const {
  if (name.empty()) {
    return default_.empty() ? entries_.end() : entries_.find(default_);
  }
  return entries_.find(name);
}

void ModelRegistry::wait_unpinned(std::unique_lock<std::mutex>& lk,
                                  const std::shared_ptr<Entry>& entry) {
  cv_.wait(lk, [&] { return entry->pinned_ == 0; });
  lk.unlock();
}

void ModelRegistry::load(const std::string& name,
                         std::shared_ptr<const runtime::Model> model, BatcherOptions opts) {
  if (!model) throw std::invalid_argument("serve::ModelRegistry: null model");
  if (name.empty() || name.size() > kMaxModelNameBytes) {
    throw std::invalid_argument(
        "serve::ModelRegistry: name must be 1..kMaxModelNameBytes bytes");
  }
  // Build the new entry (and its dispatcher Sessions) before touching the
  // map: a throwing BatcherOptions validation must leave the registry as it
  // was, and the swap window below stays as short as a pointer exchange.
  auto entry = std::make_shared<Entry>(name, std::move(model), opts, lanes_);
  std::shared_ptr<Entry> old;
  {
    std::unique_lock<std::mutex> lk(m_);
    if (shutdown_) throw std::runtime_error("serve::ModelRegistry: load() after shutdown");
    const auto it = entries_.find(name);
    // A swap (or a reload of a name that once served) is for new *weights*:
    // clients quantize features with the format they captured at connect
    // time, so changing a name's format or shape would make them silently
    // compute wrong answers. Reject here; a new format is a new name
    // (docs/deployment.md). unload()+load() must not bypass the guard, so
    // retired names keep their signature for the registry's lifetime.
    std::optional<RetiredSignature> before;
    if (it != entries_.end()) {
      before = signature_of(*it->second->model);
    } else if (const auto rit = retired_.find(name); rit != retired_.end()) {
      before = rit->second;
    }
    const RetiredSignature sig = signature_of(*entry->model);
    if (before.has_value() && !same_signature(*before, sig)) {
      throw std::invalid_argument(
          "serve::ModelRegistry: reloading '" + name +
          "' must keep format and dimensions; load a new name instead");
    }
    if (it != entries_.end()) {
      old = std::exchange(it->second, std::move(entry));
      ++counters_.swaps;
      // From here no new acquire() can reach `old`; wait out the leases
      // already taken so their submits land before the drain starts.
      wait_unpinned(lk, old);
    } else {
      retired_.erase(name);  // the name is live again, signature-compatible
      entries_.emplace(name, std::move(entry));
      if (default_.empty() && (!default_sig_.has_value() || same_signature(*default_sig_, sig))) {
        default_ = name;
        default_sig_ = sig;
      }
      ++counters_.loads;
    }
  }
  // Drain outside the lock: every request the old entry accepted is flushed
  // through its Sessions and answered from the old model before release.
  if (old) drain_lanes(*old);
}

bool ModelRegistry::unload(const std::string& name) {
  std::shared_ptr<Entry> old;
  {
    std::unique_lock<std::mutex> lk(m_);
    // After shutdown_all() the final state is read-only (its contract keeps
    // model()/stats() reporting); there is nothing left to unload.
    if (shutdown_) return false;
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    old = it->second;
    // Keep the departed entry's signature so a later load() of this name is
    // held to the same format/shape guard as a live swap.
    retired_.insert_or_assign(name, signature_of(*old->model));
    entries_.erase(it);
    if (default_ == name) default_.clear();
    ++counters_.unloads;
    wait_unpinned(lk, old);
  }
  drain_lanes(*old);
  return true;
}

ModelRegistry::Lease ModelRegistry::acquire(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  if (shutdown_) return Lease();  // entries remain readable, but route nothing
  const auto it = find_locked(name);
  if (it == entries_.end()) return Lease();
  ++it->second->pinned_;
  return Lease(this, it->second);
}

std::string ModelRegistry::default_name() const {
  std::lock_guard<std::mutex> lk(m_);
  return default_;
}

void ModelRegistry::set_default(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  if (shutdown_) {
    throw std::runtime_error("serve::ModelRegistry: set_default() after shutdown");
  }
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("serve::ModelRegistry: set_default of unknown name '" +
                                name + "'");
  }
  const RetiredSignature sig = signature_of(*it->second->model);
  if (default_sig_.has_value() && !same_signature(*default_sig_, sig)) {
    // The default route is what every v1 / empty-name client quantizes
    // against; repointing it across formats would silently corrupt them,
    // exactly like an incompatible named swap.
    throw std::invalid_argument(
        "serve::ModelRegistry: the default route must keep format and dimensions; "
        "route clients to '" + name + "' by name instead");
  }
  default_ = name;
  default_sig_ = sig;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lk(m_);
  // Same routing rule as the other read-side accessors: "" = the default.
  return find_locked(name) != entries_.end();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::shared_ptr<const runtime::Model> ModelRegistry::model(const std::string& name) const {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = find_locked(name);
  return it == entries_.end() ? nullptr : it->second->model;
}

std::optional<BatcherStats> ModelRegistry::stats(const std::string& name) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(m_);
    const auto it = find_locked(name);
    if (it == entries_.end()) return std::nullopt;
    entry = it->second;
  }
  // The batchers have their own locks; never call them under ours. Counters
  // sum across lanes; the percentiles are recomputed over the union of the
  // lanes' wait windows (an average of per-lane percentiles would answer no
  // meaningful question).
  BatcherStats total;
  std::vector<double> window;
  for (std::size_t i = 0; i < entry->lanes(); ++i) {
    const BatcherStats lane = entry->lane(i).stats();
    total.accepted += lane.accepted;
    total.rejected += lane.rejected;
    total.completed += lane.completed;
    total.deadline_exceeded += lane.deadline_exceeded;
    total.batches += lane.batches;
    total.queue_depth += lane.queue_depth;
    total.in_flight += lane.in_flight;
    entry->lane(i).wait_samples(window);
  }
  total.mean_occupancy = total.batches == 0 ? 0
                                            : static_cast<double>(total.completed) /
                                                  static_cast<double>(total.batches);
  std::sort(window.begin(), window.end());
  total.wait_p50_us = core::percentile(window, 50);
  total.wait_p99_us = core::percentile(window, 99);
  total.wait_p999_us = core::percentile(window, 99.9);
  return total;
}

ModelRegistry::Counters ModelRegistry::counters() const {
  std::lock_guard<std::mutex> lk(m_);
  return counters_;
}

void ModelRegistry::shutdown_all() {
  // The entries stay in the map — final batcher counters and models remain
  // readable after an orderly stop — but acquire() routes nothing from the
  // moment shutdown_ is set, and the drain below waits out the leases taken
  // before that.
  std::vector<std::shared_ptr<Entry>> taken;
  {
    std::unique_lock<std::mutex> lk(m_);
    if (shutdown_) return;
    shutdown_ = true;
    taken.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) taken.push_back(entry);
    for (const auto& entry : taken) {
      cv_.wait(lk, [&] { return entry->pinned_ == 0; });
    }
  }
  for (const auto& entry : taken) drain_lanes(*entry);
}

}  // namespace dp::serve
