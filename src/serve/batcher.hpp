#pragma once
// serve::DynamicBatcher — the micro-batching heart of the serving stack.
//
// Independent single-sample requests are admitted into one bounded queue
// whose rows live in a single contiguous row-major staging buffer (the
// coalescing is the append: a flush is a BatchView pointed straight at the
// carved rows, no per-row gather). Dispatcher threads — each owning a
// private runtime::Session over the shared Model — carve micro-batches off
// the queue front and flush when EITHER
//
//   * size:     max_batch rows are pending, or
//   * deadline: the oldest pending request has waited max_wait
//
// whichever comes first, so a lone request is never parked longer than
// max_wait and a burst fills whole batches. Admission applies backpressure:
// when queue_capacity rows are already pending, submit completes
// immediately with Status::kQueueFull instead of growing the queue without
// bound (reject-at-admission keeps the tail latency of *accepted* requests
// bounded by max_wait + one batch's service time).
//
// Requests may carry a DEADLINE (the protocol-v3 budget, converted to a
// steady-clock instant at decode): a request whose deadline passes while it
// is still queued is shed at carve time with Status::kDeadlineExceeded —
// its rows never reach a Session, so an already-too-late request cannot
// burn inference work that an in-budget request is waiting for. A request
// whose deadline passes mid-inference is NOT cancelled (the batch is
// already on a core; aborting it would cost more than finishing), so the
// shed guarantee is strictly about queue time. Sheds are counted in
// BatcherStats::deadline_exceeded.
//
// With dispatchers >= 2, consecutive micro-batches overlap in flight and may
// complete out of order; completion is per-request (callback or future), so
// ordering never leaks into correctness — enforced by
// tests/serve/batcher_test.cpp.
//
// Threading contract: submit() is safe from any number of threads
// concurrently (the admission lock is the only shared state on the request
// path). Callbacks run on a dispatcher thread (or inline on the submitting
// thread for immediate rejections) and must not block for long — a blocked
// callback stalls that dispatcher's share of the flush bandwidth.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "runtime/model.hpp"
#include "runtime/session.hpp"
#include "serve/types.hpp"

namespace dp::serve {

struct BatcherOptions {
  /// Rows per micro-batch flush; a size-triggered flush fires as soon as
  /// this many are pending.
  std::size_t max_batch = 32;
  /// Deadline flush: the oldest pending request never waits longer than
  /// this before its micro-batch is dispatched (even a batch of one).
  std::chrono::microseconds max_wait{1000};
  /// Admission bound on pending (not yet carved) rows; beyond it, submit
  /// rejects with Status::kQueueFull.
  std::size_t queue_capacity = 1024;
  /// Dispatcher threads = micro-batches concurrently in flight. Each owns a
  /// private Session (sharing the one Model), so 2+ lets a small batch
  /// overtake a large one.
  std::size_t dispatchers = 1;
  /// Worker-pool size of each dispatcher's Session (runtime::SessionOptions
  /// semantics: counts the dispatcher itself; 0 = hardware concurrency).
  /// Ignored when `shared_pool` is set.
  std::size_t session_threads = 1;
  /// Share one machine-sized runtime::WorkerPool across every dispatcher
  /// Session instead of spawning session_threads-sized private pools. The
  /// sharded Server uses this so N shards x M dispatchers do not oversubscribe
  /// the box with N*M pools.
  std::shared_ptr<runtime::WorkerPool> shared_pool;
  /// Align SIZE-TRIGGERED flushes to a multiple of this many rows, so burst
  /// carves hand the Model's register-blocked kernels whole sample tiles
  /// (a ragged tail re-reads every weight plane for a fraction of a tile).
  /// 0 = auto: the model's preferred kernel tile. Deadline and shutdown
  /// flushes are never trimmed — a lone request still leaves after max_wait
  /// regardless of alignment (tests/runtime/blocked_session_test.cpp).
  std::size_t tile_align = 0;
};

/// Counters + gauges snapshot; see DynamicBatcher::stats(). Wait percentiles
/// are computed over a sliding window of the most recent kWaitWindow
/// completed requests (admission -> carve time, microseconds).
struct BatcherStats {
  std::uint64_t accepted = 0;   ///< admitted into the queue
  std::uint64_t rejected = 0;   ///< refused at admission (queue full / shutdown)
  std::uint64_t completed = 0;  ///< rows flushed through a Session
  std::uint64_t deadline_exceeded = 0;  ///< shed: deadline expired while queued
  std::uint64_t batches = 0;    ///< micro-batches dispatched
  std::size_t queue_depth = 0;  ///< rows pending right now (gauge)
  std::size_t in_flight = 0;    ///< micro-batches being served right now (gauge)
  double mean_occupancy = 0;    ///< completed / batches
  double wait_p50_us = 0;       ///< median queue wait, sliding window
  double wait_p99_us = 0;       ///< tail queue wait, sliding window
  double wait_p999_us = 0;      ///< extreme-tail queue wait, sliding window
};

class DynamicBatcher {
 public:
  /// Completion callback: `bits` is the request's readout (network-format
  /// patterns), valid only for the duration of the call — copy to keep. On
  /// any status other than kOk, `bits` is empty.
  using Callback = std::function<void(Status, std::span<const std::uint32_t>)>;

  /// Sliding-window length for the wait-time percentiles in stats().
  static constexpr std::size_t kWaitWindow = 4096;

  DynamicBatcher(std::shared_ptr<const runtime::Model> model, BatcherOptions opts = {});
  ~DynamicBatcher();

  DynamicBatcher(const DynamicBatcher&) = delete;
  DynamicBatcher& operator=(const DynamicBatcher&) = delete;

  const runtime::Model& model() const { return *model_; }
  const BatcherOptions& options() const { return opts_; }

  /// Resolved flush alignment (tile_align or the model's preferred kernel
  /// tile); size-triggered carves are trimmed to a multiple of this.
  std::size_t tile() const { return tile_; }

  /// A request's absolute shed deadline (steady clock); nullopt = none.
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// Admit one sample (x.size() must equal model().input_dim(); anything
  /// else throws std::invalid_argument — dimension checking of untrusted
  /// input belongs to the caller, e.g. the Server, which maps it to
  /// kBadRequest). The sample is copied into the staging buffer; `cb` fires
  /// exactly once. Rejections (queue full, shutdown) invoke `cb` inline
  /// before submit returns — as does an already-expired `deadline`, which
  /// completes with kDeadlineExceeded without ever occupying queue space.
  void submit(std::span<const double> x, Callback cb, Deadline deadline = std::nullopt);

  /// Future-flavoured submit for callers without a completion loop.
  std::future<Reply> submit(std::span<const double> x);

  /// Stop admitting (further submits complete with kShutdown), flush every
  /// already-accepted request, and join the dispatchers. Idempotent; the
  /// destructor calls it.
  void shutdown();

  BatcherStats stats() const;

  /// Append the raw wait-window samples (microseconds, unsorted) to `out`.
  /// Lets an aggregator (ModelRegistry::stats over per-shard lanes) compute
  /// percentiles over the union of several batchers' windows instead of
  /// averaging already-computed percentiles, which would be meaningless.
  void wait_samples(std::vector<double>& out) const;

 private:
  struct Pending {
    Callback cb;
    std::chrono::steady_clock::time_point enqueued;
    // Shed bound; time_point::max() = no deadline (cheaper to compare than
    // an optional in the carve loop).
    std::chrono::steady_clock::time_point deadline;
  };

  void dispatcher_main(std::size_t index);

  std::shared_ptr<const runtime::Model> model_;
  const BatcherOptions opts_;
  const std::size_t tile_;  // resolved flush alignment, >= 1

  mutable std::mutex m_;
  std::condition_variable cv_;
  bool stop_ = false;
  // The admission queue: row i of pending_x_ belongs to pending_[i]. One
  // contiguous row-major buffer so a carve is memcpy + BatchView, never a
  // per-row gather. Carves advance head_ instead of erasing from the front
  // (O(take) per flush, not O(backlog)); the buffers compact when the queue
  // empties or the dead prefix exceeds queue_capacity rows, so memory stays
  // bounded by ~2x capacity.
  std::vector<double> pending_x_;
  std::vector<Pending> pending_;
  std::size_t head_ = 0;  // rows of pending_ already carved
  std::size_t depth_locked() const { return pending_.size() - head_; }

  // Stats (guarded by m_).
  std::uint64_t accepted_ = 0, rejected_ = 0, completed_ = 0, batches_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<double> wait_window_;  // ring buffer of recent waits (us)
  std::size_t wait_next_ = 0;

  std::vector<std::thread> dispatchers_;
};

}  // namespace dp::serve
