#pragma once
// dp::rtl::Bits — a dynamic-width bit vector with hardware (VHDL/Verilog)
// semantics: modular two's-complement arithmetic inside a fixed declared
// width, slicing, concatenation, shifts and leading-zero detection.
//
// The Deep Positron EMACs (Figs 3-5 of the paper, Algorithms 1-2) are
// specified as register-transfer-level datapaths; implementing them against
// this class keeps the C++ model line-for-line comparable with the RTL.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dp::rtl {

/// Number of bits in one storage limb.
inline constexpr std::size_t kLimbBits = 64;

/// A fixed-width (chosen at construction) bit vector.
///
/// Invariants:
///  * width() >= 1
///  * all storage bits above width()-1 are zero (canonical form)
///
/// Arithmetic is modulo 2^width (hardware register semantics); signedness is
/// an interpretation applied by the caller (as_i64, signed_lt, sra, sext).
class Bits {
 public:
  /// Zero-valued vector of the given width. Width must be >= 1.
  explicit Bits(std::size_t width);

  /// Vector of `width` bits holding `value` mod 2^width.
  Bits(std::size_t width, std::uint64_t value);

  /// Parse a binary literal, e.g. "0110". MSB first. Width = string length.
  static Bits from_string(std::string_view binary);

  /// All-ones vector of the given width.
  static Bits ones(std::size_t width);

  /// Vector with only bit `pos` set.
  static Bits one_hot(std::size_t width, std::size_t pos);

  std::size_t width() const noexcept { return width_; }

  // -- bit access ------------------------------------------------------
  bool bit(std::size_t i) const;              ///< value of bit i (0 = LSB)
  void set_bit(std::size_t i, bool v);        ///< assign bit i
  bool msb() const { return bit(width_ - 1); }
  bool lsb() const { return bit(0); }

  // -- slicing / composition -------------------------------------------
  /// VHDL-style slice in[hi : lo] (inclusive, hi >= lo). Result width hi-lo+1.
  Bits slice(std::size_t hi, std::size_t lo) const;

  /// Concatenation {hi, lo}: `hi` becomes the most-significant part.
  static Bits concat(const Bits& hi, const Bits& lo);

  /// Zero-extend or truncate (keeping LSBs) to `new_width`.
  Bits resize(std::size_t new_width) const;

  /// Sign-extend (replicating the MSB) or truncate to `new_width`.
  Bits sext(std::size_t new_width) const;

  /// Replicate this vector `count` times ({count{x}} in Verilog).
  Bits replicate(std::size_t count) const;

  // -- logic ------------------------------------------------------------
  Bits operator~() const;
  Bits operator&(const Bits& rhs) const;
  Bits operator|(const Bits& rhs) const;
  Bits operator^(const Bits& rhs) const;

  bool or_reduce() const noexcept;   ///< |x : any bit set
  bool and_reduce() const noexcept;  ///< &x : all bits set
  bool xor_reduce() const noexcept;  ///< ^x : parity
  std::size_t popcount() const noexcept;

  // -- shifts ------------------------------------------------------------
  Bits shl(std::size_t k) const;  ///< logical shift left (bits drop off MSB)
  Bits shr(std::size_t k) const;  ///< logical shift right
  Bits sra(std::size_t k) const;  ///< arithmetic shift right (MSB replicated)

  // -- arithmetic (modulo 2^width) ---------------------------------------
  Bits operator+(const Bits& rhs) const;
  Bits operator-(const Bits& rhs) const;
  Bits negate() const;                     ///< two's complement (-x)
  Bits add_u64(std::uint64_t v) const;
  /// Widening unsigned multiply: result width = width() + rhs.width().
  Bits mul_wide(const Bits& rhs) const;

  // -- comparison ----------------------------------------------------------
  bool operator==(const Bits& rhs) const;
  bool operator!=(const Bits& rhs) const { return !(*this == rhs); }
  bool ult(const Bits& rhs) const;   ///< unsigned <
  bool slt(const Bits& rhs) const;   ///< signed (two's complement) <
  bool is_zero() const noexcept { return !or_reduce(); }

  // -- counting --------------------------------------------------------------
  /// Leading-zero detector: number of consecutive 0 bits starting at the MSB.
  /// Returns width() when the vector is zero.
  std::size_t lzd() const noexcept;

  /// Number of trailing zero bits (width() if zero).
  std::size_t tzd() const noexcept;

  // -- conversion -----------------------------------------------------------
  /// Unsigned value; requires width() <= 64.
  std::uint64_t to_u64() const;
  /// Signed (two's complement) value; requires width() <= 64.
  std::int64_t to_i64() const;
  /// Unsigned value truncated to 64 bits regardless of width.
  std::uint64_t low_u64() const noexcept;
  /// Interpret as unsigned integer scaled by 2^-frac_bits.
  double to_double_scaled(std::size_t frac_bits) const;
  /// Signed two's-complement value as double (exact for <= 53 significant bits).
  double signed_to_double() const;

  std::string to_string() const;  ///< binary, MSB first
  std::string to_hex() const;

 private:
  void trim() noexcept;  // restore canonical form (clear bits above width)
  static void check_same_width(const Bits& a, const Bits& b);

  std::size_t width_;
  std::vector<std::uint64_t> limbs_;  // little-endian limb order
};

/// Leading-zero detector on a raw 64-bit word within `width` LSBs.
std::size_t lzd64(std::uint64_t v, std::size_t width) noexcept;

}  // namespace dp::rtl
