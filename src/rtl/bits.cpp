#include "rtl/bits.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dp::rtl {

namespace {

std::size_t limbs_for(std::size_t width) { return (width + kLimbBits - 1) / kLimbBits; }

}  // namespace

Bits::Bits(std::size_t width) : width_(width), limbs_(limbs_for(width), 0) {
  if (width == 0) throw std::invalid_argument("Bits: width must be >= 1");
}

Bits::Bits(std::size_t width, std::uint64_t value) : Bits(width) {
  limbs_[0] = value;
  trim();
}

Bits Bits::from_string(std::string_view binary) {
  if (binary.empty()) throw std::invalid_argument("Bits::from_string: empty literal");
  Bits out(binary.size());
  for (std::size_t i = 0; i < binary.size(); ++i) {
    const char c = binary[binary.size() - 1 - i];
    if (c == '1') {
      out.set_bit(i, true);
    } else if (c != '0') {
      throw std::invalid_argument("Bits::from_string: invalid character");
    }
  }
  return out;
}

Bits Bits::ones(std::size_t width) {
  Bits out(width);
  std::fill(out.limbs_.begin(), out.limbs_.end(), ~std::uint64_t{0});
  out.trim();
  return out;
}

Bits Bits::one_hot(std::size_t width, std::size_t pos) {
  Bits out(width);
  out.set_bit(pos, true);
  return out;
}

bool Bits::bit(std::size_t i) const {
  if (i >= width_) throw std::out_of_range("Bits::bit: index out of range");
  return (limbs_[i / kLimbBits] >> (i % kLimbBits)) & 1u;
}

void Bits::set_bit(std::size_t i, bool v) {
  if (i >= width_) throw std::out_of_range("Bits::set_bit: index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % kLimbBits);
  if (v) {
    limbs_[i / kLimbBits] |= mask;
  } else {
    limbs_[i / kLimbBits] &= ~mask;
  }
}

Bits Bits::slice(std::size_t hi, std::size_t lo) const {
  if (hi < lo) throw std::invalid_argument("Bits::slice: hi < lo");
  if (hi >= width_) throw std::out_of_range("Bits::slice: hi out of range");
  const std::size_t w = hi - lo + 1;
  Bits out = shr(lo);
  return out.resize(w);
}

Bits Bits::concat(const Bits& hi, const Bits& lo) {
  Bits out = hi.resize(hi.width_ + lo.width_).shl(lo.width_);
  const Bits lo_ext = lo.resize(out.width_);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) out.limbs_[i] |= lo_ext.limbs_[i];
  return out;
}

Bits Bits::resize(std::size_t new_width) const {
  Bits out(new_width);
  const std::size_t n = std::min(out.limbs_.size(), limbs_.size());
  std::copy_n(limbs_.begin(), n, out.limbs_.begin());
  out.trim();
  return out;
}

Bits Bits::sext(std::size_t new_width) const {
  Bits out = resize(new_width);
  if (new_width > width_ && msb()) {
    for (std::size_t i = width_; i < new_width; ++i) out.set_bit(i, true);
  }
  return out;
}

Bits Bits::replicate(std::size_t count) const {
  if (count == 0) throw std::invalid_argument("Bits::replicate: count must be >= 1");
  Bits out = *this;
  for (std::size_t i = 1; i < count; ++i) out = concat(out, *this);
  return out;
}

Bits Bits::operator~() const {
  Bits out = *this;
  for (auto& l : out.limbs_) l = ~l;
  out.trim();
  return out;
}

void Bits::check_same_width(const Bits& a, const Bits& b) {
  if (a.width_ != b.width_) throw std::invalid_argument("Bits: width mismatch");
}

Bits Bits::operator&(const Bits& rhs) const {
  check_same_width(*this, rhs);
  Bits out = *this;
  for (std::size_t i = 0; i < limbs_.size(); ++i) out.limbs_[i] &= rhs.limbs_[i];
  return out;
}

Bits Bits::operator|(const Bits& rhs) const {
  check_same_width(*this, rhs);
  Bits out = *this;
  for (std::size_t i = 0; i < limbs_.size(); ++i) out.limbs_[i] |= rhs.limbs_[i];
  return out;
}

Bits Bits::operator^(const Bits& rhs) const {
  check_same_width(*this, rhs);
  Bits out = *this;
  for (std::size_t i = 0; i < limbs_.size(); ++i) out.limbs_[i] ^= rhs.limbs_[i];
  return out;
}

bool Bits::or_reduce() const noexcept {
  for (const auto l : limbs_)
    if (l != 0) return true;
  return false;
}

bool Bits::and_reduce() const noexcept {
  // All bits within width must be 1.
  return popcount() == width_;
}

bool Bits::xor_reduce() const noexcept { return popcount() % 2 == 1; }

std::size_t Bits::popcount() const noexcept {
  std::size_t n = 0;
  for (const auto l : limbs_) n += static_cast<std::size_t>(std::popcount(l));
  return n;
}

Bits Bits::shl(std::size_t k) const {
  Bits out(width_);
  if (k >= width_) return out;
  const std::size_t limb_shift = k / kLimbBits;
  const std::size_t bit_shift = k % kLimbBits;
  for (std::size_t i = limbs_.size(); i-- > limb_shift;) {
    std::uint64_t v = limbs_[i - limb_shift] << bit_shift;
    if (bit_shift != 0 && i > limb_shift) {
      v |= limbs_[i - limb_shift - 1] >> (kLimbBits - bit_shift);
    }
    out.limbs_[i] = v;
  }
  out.trim();
  return out;
}

Bits Bits::shr(std::size_t k) const {
  Bits out(width_);
  if (k >= width_) return out;
  const std::size_t limb_shift = k / kLimbBits;
  const std::size_t bit_shift = k % kLimbBits;
  for (std::size_t i = 0; i + limb_shift < limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = v;
  }
  return out;
}

Bits Bits::sra(std::size_t k) const {
  if (!msb()) return shr(k);
  if (k >= width_) return ones(width_);
  Bits out = shr(k);
  for (std::size_t i = width_ - k; i < width_; ++i) out.set_bit(i, true);
  return out;
}

Bits Bits::operator+(const Bits& rhs) const {
  check_same_width(*this, rhs);
  Bits out(width_);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(limbs_[i]) + rhs.limbs_[i] + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> kLimbBits;
  }
  out.trim();
  return out;
}

Bits Bits::operator-(const Bits& rhs) const { return *this + rhs.negate(); }

Bits Bits::negate() const { return (~*this).add_u64(1); }

Bits Bits::add_u64(std::uint64_t v) const {
  Bits rhs(width_, width_ >= kLimbBits ? v : (v & ((std::uint64_t{1} << width_) - 1)));
  return *this + rhs;
}

Bits Bits::mul_wide(const Bits& rhs) const {
  Bits out(width_ + rhs.width_);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      if (i + j >= out.limbs_.size()) break;
      const unsigned __int128 cur = static_cast<unsigned __int128>(limbs_[i]) * rhs.limbs_[j] +
                                    out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> kLimbBits);
    }
    if (i + rhs.limbs_.size() < out.limbs_.size()) {
      // Propagate the final carry (cannot overflow the product width).
      std::size_t idx = i + rhs.limbs_.size();
      while (carry != 0 && idx < out.limbs_.size()) {
        const unsigned __int128 cur = static_cast<unsigned __int128>(out.limbs_[idx]) + carry;
        out.limbs_[idx] = static_cast<std::uint64_t>(cur);
        carry = static_cast<std::uint64_t>(cur >> kLimbBits);
        ++idx;
      }
    }
  }
  out.trim();
  return out;
}

bool Bits::operator==(const Bits& rhs) const {
  check_same_width(*this, rhs);
  return limbs_ == rhs.limbs_;
}

bool Bits::ult(const Bits& rhs) const {
  check_same_width(*this, rhs);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] < rhs.limbs_[i];
  }
  return false;
}

bool Bits::slt(const Bits& rhs) const {
  const bool sa = msb();
  const bool sb = rhs.msb();
  if (sa != sb) return sa;  // negative < non-negative
  return ult(rhs);
}

std::size_t Bits::lzd() const noexcept {
  for (std::size_t i = width_; i-- > 0;) {
    if ((limbs_[i / kLimbBits] >> (i % kLimbBits)) & 1u) return width_ - 1 - i;
  }
  return width_;
}

std::size_t Bits::tzd() const noexcept {
  for (std::size_t i = 0; i < width_; ++i) {
    if ((limbs_[i / kLimbBits] >> (i % kLimbBits)) & 1u) return i;
  }
  return width_;
}

std::uint64_t Bits::to_u64() const {
  if (width_ > kLimbBits) throw std::logic_error("Bits::to_u64: width > 64");
  return limbs_[0];
}

std::int64_t Bits::to_i64() const {
  if (width_ > kLimbBits) throw std::logic_error("Bits::to_i64: width > 64");
  std::uint64_t v = limbs_[0];
  if (width_ < kLimbBits && msb()) {
    v |= ~((std::uint64_t{1} << width_) - 1);  // sign extend
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t Bits::low_u64() const noexcept { return limbs_[0]; }

double Bits::to_double_scaled(std::size_t frac_bits) const {
  double acc = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    acc = acc * 18446744073709551616.0 /* 2^64 */ + static_cast<double>(limbs_[i]);
  }
  return acc / std::pow(2.0, static_cast<double>(frac_bits));
}

double Bits::signed_to_double() const {
  if (!msb()) return to_double_scaled(0);
  return -negate().to_double_scaled(0);
}

std::string Bits::to_string() const {
  std::string s(width_, '0');
  for (std::size_t i = 0; i < width_; ++i) {
    if (bit(i)) s[width_ - 1 - i] = '1';
  }
  return s;
}

std::string Bits::to_hex() const {
  static constexpr char digits[] = "0123456789abcdef";
  const std::size_t n = (width_ + 3) / 4;
  std::string s(n, '0');
  for (std::size_t i = 0; i < n; ++i) {
    unsigned nib = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      const std::size_t pos = i * 4 + b;
      if (pos < width_ && bit(pos)) nib |= 1u << b;
    }
    s[n - 1 - i] = digits[nib];
  }
  return s;
}

void Bits::trim() noexcept {
  const std::size_t rem = width_ % kLimbBits;
  if (rem != 0) {
    limbs_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

std::size_t lzd64(std::uint64_t v, std::size_t width) noexcept {
  std::size_t n = 0;
  for (std::size_t i = width; i-- > 0;) {
    if ((v >> i) & 1u) break;
    ++n;
  }
  return n;
}

}  // namespace dp::rtl
