#pragma once
// Dataset container, preprocessing and the three benchmark tasks of the
// paper (Table II): Wisconsin Breast Cancer (WDBC), Iris and Mushroom.
//
// This environment has no network access, so the UCI files are replaced by
// deterministic synthetic generators parameterized with the published
// class-conditional statistics of each dataset (see DESIGN.md §3). Sample
// counts, class priors, feature counts and the paper's train/test sizes
// (Iris 100/50, WDBC 379/190, Mushroom 5416/2708) are preserved, and the
// generators are difficulty-tuned so the float32 reference accuracy lands
// near the paper's reported values.

#include <cstdint>
#include <string>
#include <vector>

namespace dp::data {

struct Dataset {
  std::string name;
  std::vector<std::vector<double>> x;  ///< samples x features
  std::vector<int> y;                  ///< labels in [0, classes)
  int classes = 0;

  std::size_t size() const { return x.size(); }
  std::size_t features() const { return x.empty() ? 0 : x.front().size(); }
};

struct Split {
  Dataset train;
  Dataset test;
};

/// Stratified split with round(size * test_fraction) test rows (matching the
/// paper's inference sizes at test_fraction = 1/3).
Split stratified_split(const Dataset& d, double test_fraction, std::uint32_t seed);

/// Min-max normalization to [0, 1], fit on train, applied to both.
void minmax_normalize(Split& split);

/// Fisher's Iris: 150 samples, 4 features, 3 balanced classes. Synthetic
/// Gaussian generator using the published per-class means and standard
/// deviations (Fisher 1936).
Dataset make_iris(std::uint32_t seed);

/// Wisconsin Diagnostic Breast Cancer: 569 samples (357 benign/212
/// malignant), 30 features = 10 cell-nucleus measurements x (mean, SE,
/// worst). Generated from a per-sample latent severity factor so features
/// correlate as in the real data.
Dataset make_wbc(std::uint32_t seed);

/// Mushroom: 8124 samples (4208 edible/3916 poisonous), 22 categorical
/// attributes one-hot encoded (119 binary features; the single-valued
/// veil-type attribute is dropped). A handful of highly
/// informative attributes (odor, spore print color, gill size...) dominate,
/// as in the UCI data.
Dataset make_mushroom(std::uint32_t seed);

/// Table II inference sizes (paper): used as the test split everywhere.
inline constexpr std::size_t kIrisTestSize = 50;
inline constexpr std::size_t kWbcTestSize = 190;
inline constexpr std::size_t kMushroomTestSize = 2708;

}  // namespace dp::data
