#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>

namespace dp::data {

Split stratified_split(const Dataset& d, double test_fraction, std::uint32_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: fraction must be in (0,1)");
  }
  std::mt19937 rng(seed);
  // Bucket indices per class and shuffle each bucket.
  std::vector<std::vector<std::size_t>> buckets(static_cast<std::size_t>(d.classes));
  for (std::size_t i = 0; i < d.size(); ++i) {
    buckets[static_cast<std::size_t>(d.y[i])].push_back(i);
  }
  for (auto& b : buckets) std::shuffle(b.begin(), b.end(), rng);

  // Round the total test size to match the paper's inference sizes exactly,
  // distributing per class proportionally (largest-remainder method).
  const auto total_test =
      static_cast<std::size_t>(std::llround(static_cast<double>(d.size()) * test_fraction));
  std::vector<std::size_t> take(buckets.size());
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < buckets.size(); ++c) {
    const double exact = static_cast<double>(buckets[c].size()) * test_fraction;
    take[c] = static_cast<std::size_t>(std::floor(exact));
    assigned += take[c];
    remainders.emplace_back(exact - std::floor(exact), c);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t i = 0; assigned < total_test && i < remainders.size(); ++i, ++assigned) {
    ++take[remainders[i].second];
  }

  Split out;
  out.train.name = d.name;
  out.test.name = d.name;
  out.train.classes = d.classes;
  out.test.classes = d.classes;
  for (std::size_t c = 0; c < buckets.size(); ++c) {
    for (std::size_t i = 0; i < buckets[c].size(); ++i) {
      Dataset& dst = (i < take[c]) ? out.test : out.train;
      dst.x.push_back(d.x[buckets[c][i]]);
      dst.y.push_back(d.y[buckets[c][i]]);
    }
  }
  // Shuffle the assembled sets so classes interleave.
  const auto shuffle_set = [&rng](Dataset& s) {
    std::vector<std::size_t> idx(s.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::shuffle(idx.begin(), idx.end(), rng);
    Dataset t = s;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      s.x[i] = t.x[idx[i]];
      s.y[i] = t.y[idx[i]];
    }
  };
  shuffle_set(out.train);
  shuffle_set(out.test);
  return out;
}

void minmax_normalize(Split& split) {
  if (split.train.x.empty()) throw std::invalid_argument("minmax_normalize: empty train set");
  const std::size_t nf = split.train.features();
  std::vector<double> lo(nf, std::numeric_limits<double>::infinity());
  std::vector<double> hi(nf, -std::numeric_limits<double>::infinity());
  for (const auto& row : split.train.x) {
    for (std::size_t f = 0; f < nf; ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
    }
  }
  const auto apply = [&](Dataset& d) {
    for (auto& row : d.x) {
      for (std::size_t f = 0; f < nf; ++f) {
        const double range = hi[f] - lo[f];
        row[f] = range > 0 ? std::clamp((row[f] - lo[f]) / range, 0.0, 1.0) : 0.0;
      }
    }
  };
  apply(split.train);
  apply(split.test);
}

// ---------------------------------------------------------------------------
// Iris.
// ---------------------------------------------------------------------------

Dataset make_iris(std::uint32_t seed) {
  // Published per-class statistics of Fisher's Iris (sepal length, sepal
  // width, petal length, petal width): means and standard deviations.
  struct ClassStats {
    double mean[4];
    double sd[4];
  };
  static constexpr ClassStats kStats[3] = {
      // setosa
      {{5.006, 3.428, 1.462, 0.246}, {0.352, 0.379, 0.174, 0.105}},
      // versicolor
      {{5.936, 2.770, 4.260, 1.326}, {0.516, 0.314, 0.470, 0.198}},
      // virginica
      {{6.588, 2.974, 5.552, 2.026}, {0.636, 0.322, 0.552, 0.275}},
  };
  // Within-class correlation between petal length and petal width (the real
  // data's dominant correlation) keeps the task's geometry.
  constexpr double kPetalCorr = 0.6;

  Dataset d;
  d.name = "iris";
  d.classes = 3;
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      const ClassStats& st = kStats[static_cast<std::size_t>(c)];
      std::vector<double> row(4);
      const double z_shared = gauss(rng);
      for (int f = 0; f < 4; ++f) {
        double z = gauss(rng);
        if (f >= 2) z = kPetalCorr * z_shared + std::sqrt(1 - kPetalCorr * kPetalCorr) * z;
        row[static_cast<std::size_t>(f)] = st.mean[f] + st.sd[f] * z;
      }
      d.x.push_back(std::move(row));
      d.y.push_back(c);
    }
  }
  return d;
}

// ---------------------------------------------------------------------------
// WDBC.
// ---------------------------------------------------------------------------

Dataset make_wbc(std::uint32_t seed) {
  // 10 cell-nucleus base measurements; per-class (benign, malignant) means
  // and SDs approximating the published WDBC marginals (radius, texture,
  // perimeter, area, smoothness, compactness, concavity, concave points,
  // symmetry, fractal dimension).
  struct Feature {
    double mean_b, sd_b, mean_m, sd_m;
  };
  static constexpr Feature kBase[10] = {
      {12.15, 1.78, 17.46, 3.20},   // radius
      {17.91, 3.99, 21.60, 3.78},   // texture
      {78.08, 11.8, 115.4, 21.9},   // perimeter
      {462.8, 134., 978.4, 368.},   // area
      {0.0925, .013, 0.1029, .013},  // smoothness
      {0.0800, .034, 0.1452, .054},  // compactness
      {0.0461, .043, 0.1608, .075},  // concavity
      {0.0257, .016, 0.0880, .034},  // concave points
      {0.174, .025, 0.193, .028},    // symmetry
      {0.0629, .007, 0.0627, .007},  // fractal dimension
  };
  // Difficulty calibration (DESIGN.md §3): class overlap and label noise are
  // tuned so the float32 reference lands near the paper's 90.1% — the raw
  // marginals above would make the synthetic task easier than the real WDBC
  // because the generator lacks its heavy-tailed outliers and near-boundary
  // cases.
  constexpr double kMeanPull = 0.42;   // malignant means pulled toward benign
  constexpr double kSdInflate = 2.0;
  constexpr double kLabelNoise = 0.04;
  Dataset d;
  d.name = "wbc";
  d.classes = 2;
  std::mt19937 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const auto make_class = [&](int label, int count) {
    for (int i = 0; i < count; ++i) {
      // A latent severity factor couples the size/shape features, as in the
      // real data (radius/perimeter/area are near-collinear).
      const double severity = gauss(rng);
      std::vector<double> row;
      row.reserve(30);
      double base_vals[10];
      for (int f = 0; f < 10; ++f) {
        const Feature& ft = kBase[f];
        const double mean_m = ft.mean_b + kMeanPull * (ft.mean_m - ft.mean_b);
        const double mean = label == 0 ? ft.mean_b : mean_m;
        const double sd = (label == 0 ? ft.sd_b : ft.sd_m) * kSdInflate;
        // Size/shape features (0-3, 5-7) load on the severity factor.
        const bool loaded = (f <= 3) || (f >= 5 && f <= 7);
        const double corr = loaded ? 0.65 : 0.2;
        const double z = corr * severity + std::sqrt(1 - corr * corr) * gauss(rng);
        base_vals[f] = mean + sd * z;
      }
      // mean triple
      for (int f = 0; f < 10; ++f) row.push_back(base_vals[f]);
      // standard-error triple: proportional to the mean with noise
      for (int f = 0; f < 10; ++f) {
        row.push_back(std::fabs(base_vals[f]) * (0.05 + 0.02 * std::fabs(gauss(rng))));
      }
      // "worst" triple: mean plus a positive excursion
      for (int f = 0; f < 10; ++f) {
        const Feature& ft = kBase[f];
        const double sd = label == 0 ? ft.sd_b : ft.sd_m;
        row.push_back(base_vals[f] + sd * (0.8 + 0.5 * std::fabs(gauss(rng))));
      }
      const bool flip = unif(rng) < kLabelNoise;
      d.x.push_back(std::move(row));
      d.y.push_back(flip ? 1 - label : label);
    }
  };
  make_class(0, 357);  // benign
  make_class(1, 212);  // malignant
  return d;
}

// ---------------------------------------------------------------------------
// Mushroom.
// ---------------------------------------------------------------------------

Dataset make_mushroom(std::uint32_t seed) {
  // 22 categorical attributes with the UCI arities (total one-hot width 117
  // once the two single-valued attributes collapse). Predictiveness mirrors
  // the real data: odor is nearly decisive, spore print color / gill size /
  // gill color strong, the rest weakly informative or noise.
  //
  // For each attribute we define per-class category weights; sampling picks
  // a category from the class-conditional distribution.
  struct Attribute {
    int arity;
    double strength;  // 0 = pure noise, 1 = highly predictive
  };
  static constexpr Attribute kAttrs[22] = {
      {6, 0.30},  // cap-shape
      {4, 0.25},  // cap-surface
      {10, 0.35}, // cap-color
      {2, 0.45},  // bruises
      {9, 0.97},  // odor (nearly decisive in UCI data)
      {2, 0.25},  // gill-attachment
      {2, 0.35},  // gill-spacing
      {2, 0.75},  // gill-size
      {12, 0.70}, // gill-color
      {2, 0.45},  // stalk-shape
      {5, 0.60},  // stalk-root
      {4, 0.50},  // stalk-surface-above-ring
      {4, 0.50},  // stalk-surface-below-ring
      {9, 0.40},  // stalk-color-above-ring
      {9, 0.40},  // stalk-color-below-ring
      {1, 0.0},   // veil-type (single-valued in UCI data)
      {4, 0.30},  // veil-color
      {3, 0.40},  // ring-number
      {8, 0.75},  // ring-type
      {9, 0.85},  // spore-print-color
      {6, 0.45},  // population
      {7, 0.50},  // habitat
  };

  Dataset d;
  d.name = "mushroom";
  d.classes = 2;
  std::mt19937 rng(seed);

  // Build class-conditional category distributions per attribute, fixed by a
  // dedicated RNG so the task is identical across dataset seeds. Each
  // attribute splits its categories between the classes (even indices favour
  // edible, odd favour poisonous); `strength` controls how exclusive the
  // split is. Odor at 0.97 mirrors the UCI data, where odor alone classifies
  // ~98.5% of samples.
  std::mt19937 proto_rng(0xA11CE);
  std::vector<std::vector<std::vector<double>>> probs(22);  // [attr][class][cat]
  for (int a = 0; a < 22; ++a) {
    const int arity = kAttrs[a].arity;
    const double s = kAttrs[a].strength;
    probs[a].assign(2, std::vector<double>(static_cast<std::size_t>(arity)));
    std::uniform_real_distribution<double> u(0.3, 1.0);
    std::vector<double> shape(static_cast<std::size_t>(arity));
    for (auto& v : shape) v = u(proto_rng);
    for (int cls = 0; cls < 2; ++cls) {
      double sum = 0;
      for (int c = 0; c < arity; ++c) {
        const bool exclusive = (arity >= 2) && (c % 2 == cls);
        const double p = shape[static_cast<std::size_t>(c)] * (exclusive ? 1.0 : 1.0 - s);
        probs[a][static_cast<std::size_t>(cls)][static_cast<std::size_t>(c)] = p;
        sum += p;
      }
      for (auto& p : probs[a][static_cast<std::size_t>(cls)]) p /= sum;
    }
  }

  // Label noise caps the achievable accuracy near the paper's 96.8% float32
  // result (the UCI data is perfectly separable; the paper's network is not
  // a perfect classifier — see DESIGN.md §3).
  constexpr double kLabelNoise = 0.025;
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  const int counts[2] = {4208, 3916};  // edible, poisonous (UCI totals)
  for (int cls = 0; cls < 2; ++cls) {
    for (int i = 0; i < counts[cls]; ++i) {
      std::vector<double> row;
      row.reserve(119);
      for (int a = 0; a < 22; ++a) {
        const int arity = kAttrs[a].arity;
        if (arity <= 1) continue;  // single-valued: carries no information
        std::discrete_distribution<int> dist(
            probs[a][static_cast<std::size_t>(cls)].begin(),
            probs[a][static_cast<std::size_t>(cls)].end());
        const int cat = dist(rng);
        for (int c = 0; c < arity; ++c) row.push_back(c == cat ? 1.0 : 0.0);
      }
      d.x.push_back(std::move(row));
      d.y.push_back(unif(rng) < kLabelNoise ? 1 - cls : cls);
    }
  }
  // Interleave classes.
  std::vector<std::size_t> idx(d.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng);
  Dataset shuffled = d;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    shuffled.x[i] = d.x[idx[i]];
    shuffled.y[i] = d.y[idx[i]];
  }
  return shuffled;
}

}  // namespace dp::data
