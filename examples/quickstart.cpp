// Quickstart: posit arithmetic, EMAC exactness, and format comparison in
// ~60 lines. Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "emac/emac.hpp"
#include "emac/naive_mac.hpp"
#include "numeric/format.hpp"

int main() {
  using namespace dp;

  // --- 1. Posit values -------------------------------------------------------
  const num::PositFormat p8{8, 1};  // 8 bits, 1 exponent bit
  const num::Posit a = num::Posit::from_double(1.5, p8);
  const num::Posit b = num::Posit::from_double(-0.1875, p8);
  std::printf("posit<8,1>: 1.5 encodes as 0x%02x, -0.1875 as 0x%02x\n", a.bits(),
              b.bits());
  std::printf("a + b = %g, a * b = %g, a / b = %g\n", (a + b).to_double(),
              (a * b).to_double(), (a / b).to_double());
  std::printf("maxpos = %g, minpos = %g, dynamic range = %.1f decades\n\n", p8.maxpos(),
              p8.minpos(), p8.dynamic_range());

  // --- 2. The EMAC: one rounding per dot product -----------------------------
  // Accumulate 8.0 + 63 * (1/16). Exact answer: 11.9375.
  const num::Format fmt = p8;
  const std::size_t k = 64;
  const auto emac = emac::make_emac(fmt, k);
  std::vector<std::uint32_t> w{fmt.from_double(8.0)}, x{fmt.from_double(1.0)};
  for (std::size_t i = 1; i < k; ++i) {
    w.push_back(fmt.from_double(1.0 / 16.0));
    x.push_back(fmt.from_double(1.0));
  }
  emac->reset();
  for (std::size_t i = 0; i < k; ++i) emac->step(w[i], x[i]);
  const double exact_emac = fmt.to_double(emac->result());
  const double naive = fmt.to_double(emac::naive_mac(fmt, 0, w, x));
  std::printf("dot product, exact answer 11.9375:\n");
  std::printf("  EMAC (quire, one rounding): %g\n", exact_emac);
  std::printf("  naive MAC (round each step): %g  <- swamped the small terms\n\n", naive);

  // --- 3. Compare the three formats at 8 bits --------------------------------
  std::printf("quantizing 0.3 at 8 bits:\n");
  for (const num::Format f : {num::Format{num::PositFormat{8, 0}},
                              num::Format{num::FloatFormat{4, 3}},
                              num::Format{num::FixedFormat{8, 7}}}) {
    const double q = f.to_double(f.from_double(0.3));
    std::printf("  %-14s -> %-10g (error %+.5f)\n", f.name().c_str(), q, q - 0.3);
  }
  return 0;
}
