// Accelerator design-space demo: size a Deep Positron accelerator for a
// user-defined topology and compare formats on timing, resources and energy
// — the §III-E architecture plus the hardware cost model in one view.

#include <cstdio>
#include <vector>

#include "arch/accelerator.hpp"
#include "hw/cost_model.hpp"
#include "nn/quantize.hpp"

int main() {
  using namespace dp;

  // A mid-sized edge-inference network: 64 inputs, two hidden layers.
  const std::vector<std::size_t> topology{64, 48, 24, 10};
  const nn::Mlp net(topology, 7);

  std::printf("Deep Positron accelerator design-space for a 64-48-24-10 MLP\n\n");
  std::printf("%-14s %9s %9s %11s %12s %11s %11s %12s\n", "format", "LUTs/EMAC",
              "EMACs", "clock MHz", "latency us", "inf/s", "nJ/inf", "EDP (J*s)");
  for (int i = 0; i < 96; ++i) std::printf("-");
  std::printf("\n");

  const std::vector<num::Format> formats{
      num::Format{num::FixedFormat{8, 7}},  num::Format{num::FloatFormat{3, 4}},
      num::Format{num::FloatFormat{4, 3}},  num::Format{num::PositFormat{8, 0}},
      num::Format{num::PositFormat{8, 1}},  num::Format{num::PositFormat{8, 2}},
      num::Format{num::PositFormat{6, 1}},  num::Format{num::FixedFormat{6, 5}},
  };

  for (const auto& fmt : formats) {
    const auto synth = hw::synthesize_emac(fmt, 64);
    const auto report = arch::simulate(nn::quantize(net, fmt));
    std::printf("%-14s %9.0f %9zu %11.1f %12.3f %11.0f %11.3f %12.3e\n",
                fmt.name().c_str(), synth.luts, report.emac_units,
                report.clock_hz / 1e6, report.latency_s * 1e6,
                report.throughput_inf_per_s,
                report.dynamic_energy_per_inference_j * 1e9, report.edp_j_s);
  }

  std::printf("\ntrade-off summary:\n");
  std::printf("  - fixed-point: fastest clock and lowest energy, but no dynamic range\n");
  std::printf("    headroom (accuracy collapses when sums exceed +-1; see "
              "bench_table2)\n");
  std::printf("  - posit: best accuracy per bit (bench_table2/bench_fig9) at a\n");
  std::printf("    moderate LUT/energy premium; clocks above float at matched range\n");
  std::printf("  - float: middle ground on every axis\n");
  return 0;
}
