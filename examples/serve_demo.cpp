// End-to-end tour of the dp::serve stack (mirrored step by step in
// docs/serving.md): train + quantize a model, stand up an in-process Server,
// talk to it over the framed wire protocol from two clients — blocking round
// trips, pipelined out-of-order receives, a deadline flush, backpressure —
// and read the stats. Exits 0 only if every served prediction is
// bit-identical to a direct runtime::Session call.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "nn/quantize.hpp"
#include "runtime/session.hpp"
#include "serve/server.hpp"

int main() {
  using namespace dp;
  using namespace std::chrono_literals;

  std::printf("== dp::serve demo ==\n\n");

  // 1. Train once, quantize to the paper's 8-bit posit, freeze into the
  //    shared immutable Model every layer above reads.
  const core::TrainedTask task = core::prepare_task(core::iris_task());
  const auto model =
      runtime::Model::create(nn::quantize(task.net, num::Format{num::PositFormat{8, 0}}));
  std::printf("[1] model: %s, input dim %zu, %zu MACs/inference\n",
              model->format().name().c_str(), model->input_dim(),
              model->macs_per_inference());

  // 2. A Server owns one DynamicBatcher: requests from every connection
  //    coalesce into contiguous micro-batches, flushed on max_batch rows or
  //    when the oldest request has waited max_wait, whichever first.
  serve::ServerOptions opts;
  opts.batcher.max_batch = 16;
  opts.batcher.max_wait = 500us;
  opts.batcher.session_threads = 2;
  serve::Server server(model, opts);
  std::printf("[2] server up: max_batch=%zu, max_wait=%lldus, queue_capacity=%zu\n",
              opts.batcher.max_batch,
              static_cast<long long>(opts.batcher.max_wait.count()),
              opts.batcher.queue_capacity);

  // 3. Blocking round trips from client A. The wire carries the sample as
  //    raw posit bit patterns; replies must match a direct Session exactly.
  serve::Client a = server.connect();
  runtime::Session direct(model);
  bool all_identical = true;
  std::size_t correct = 0;
  const std::size_t probe = 10;
  for (std::size_t i = 0; i < probe; ++i) {
    const std::vector<double>& x = task.split.test.x[i];
    const int served = a.predict(x);
    if (served != direct.predict(std::span<const double>(x))) all_identical = false;
    if (served == task.split.test.y[i]) ++correct;
  }
  std::printf("[3] client A: %zu/%zu test samples correct, served == direct Session: %s\n",
              correct, probe, all_identical ? "yes" : "NO <-- BUG");

  // 4. Client B pipelines: fire 8 requests, then collect the replies in
  //    reverse order — the echoed request id is what pairs them back up,
  //    so out-of-order micro-batch completion can never mix results.
  serve::Client b = server.connect();
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 8; ++i) ids.push_back(b.send(task.split.test.x[i]));
  for (std::size_t i = ids.size(); i-- > 0;) {
    const serve::Reply reply = b.receive(ids[i]);
    const auto bits = direct.forward_bits(std::span<const double>(task.split.test.x[i]));
    if (!reply.ok() ||
        reply.bits != std::vector<std::uint32_t>(bits.begin(), bits.end())) {
      all_identical = false;
    }
  }
  std::printf("[4] client B: 8 pipelined requests, received in reverse, all identical: %s\n",
              all_identical ? "yes" : "NO <-- BUG");

  // 5. A lone request never waits past max_wait: the deadline flush serves
  //    it as a micro-batch of one.
  const auto t0 = std::chrono::steady_clock::now();
  (void)a.predict(task.split.test.x[0]);
  const std::chrono::duration<double, std::micro> lone = std::chrono::steady_clock::now() - t0;
  std::printf("[5] lone request round trip: %.0f us (deadline flush at %lld us)\n",
              lone.count(), static_cast<long long>(opts.batcher.max_wait.count()));

  const serve::ServerStats stats = server.stats();
  std::printf("[6] stats: %llu requests in %llu batches (mean occupancy %.2f), "
              "queue wait p50 %.1f us / p99 %.1f us\n",
              static_cast<unsigned long long>(stats.batcher.completed),
              static_cast<unsigned long long>(stats.batcher.batches),
              stats.batcher.mean_occupancy, stats.batcher.wait_p50_us,
              stats.batcher.wait_p99_us);

  // 7. Backpressure: a server sized for 2 pending rows rejects the overflow
  //    at admission with kQueueFull instead of queueing without bound.
  serve::ServerOptions tiny;
  tiny.batcher.max_batch = 64;
  tiny.batcher.max_wait = 10s;  // park everything; only admission reacts
  tiny.batcher.queue_capacity = 2;
  serve::Server small(model, tiny);
  serve::Client c = small.connect();
  std::vector<std::uint64_t> flood;
  for (std::size_t i = 0; i < 6; ++i) flood.push_back(c.send(task.split.test.x[i]));
  std::size_t rejected = 0;
  for (std::size_t i = 2; i < flood.size(); ++i) {
    if (c.receive(flood[i]).status == serve::Status::kQueueFull) ++rejected;
  }
  small.stop();  // drains the two accepted requests before closing
  const bool drained = c.receive(flood[0]).ok() && c.receive(flood[1]).ok();
  std::printf("[7] backpressure: 6 sent into capacity 2 -> %zu rejected with queue-full, "
              "accepted drained on stop: %s\n",
              rejected, drained ? "yes" : "NO <-- BUG");

  return all_identical && rejected == 4 && drained ? 0 : 1;
}
