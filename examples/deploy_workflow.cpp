// Deployment workflow: train once, persist the float32 network, reload it,
// quantize for the accelerator, persist the quantized weight file, and
// verify the reloaded quantized model gives identical predictions — the
// offline toolchain a Deep Positron FPGA deployment would use.

#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "nn/io.hpp"
#include "runtime/session.hpp"

int main() {
  using namespace dp;

  std::printf("== Deep Positron deployment workflow ==\n\n");

  // 1. Train the float32 reference (the role of the paper's TensorFlow).
  const core::TrainedTask task = core::prepare_task(core::iris_task());
  std::printf("[1] trained iris float32 net: test accuracy %.2f%%\n",
              task.float32_test_accuracy * 100);

  // 2. Persist and reload the float32 network.
  std::stringstream f32_file;
  nn::save_network(f32_file, task.net);
  std::printf("[2] saved float32 network (%zu bytes)\n", f32_file.str().size());
  const nn::Mlp reloaded = nn::load_network(f32_file);

  // 3. Quantize for the 8-bit posit accelerator and persist the weight file.
  const num::Format fmt = num::PositFormat{8, 0};
  const nn::QuantizedNetwork quant = nn::quantize(reloaded, fmt);
  std::stringstream q_file;
  nn::save_quantized(q_file, quant);
  std::printf("[3] quantized to %s and saved (%zu bytes vs %zu for float32)\n",
              fmt.name().c_str(), q_file.str().size(), f32_file.str().size());

  // 4. Reload the quantized file (as the accelerator loader would), stand up
  //    one runtime Session per model, and check bit-identical behaviour
  //    (single-sample calls reuse Session-owned scratch state — no per-call
  //    allocation, no locking).
  runtime::Session original(runtime::Model::create(quant));
  runtime::Session shipped(runtime::Model::create(nn::load_quantized(q_file)));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < task.split.test.size(); ++i) {
    if (original.predict(task.split.test.x[i]) == shipped.predict(task.split.test.x[i])) {
      ++agree;
    }
  }
  std::printf("[4] reloaded model agrees on %zu/%zu test samples\n", agree,
              task.split.test.size());

  // 5. Batched accuracy over the contiguous packed split — the serving-shaped
  //    entry point.
  const std::vector<double> flat =
      runtime::pack_rows(task.split.test.x, shipped.model().input_dim());
  const double acc = shipped.accuracy(
      runtime::BatchView(flat, shipped.model().input_dim()), task.split.test.y);
  std::printf("[5] deployed 8-bit posit accuracy: %.2f%% (float32 %.2f%%)\n",
              acc * 100, task.float32_test_accuracy * 100);
  return agree == task.split.test.size() ? 0 : 1;
}
