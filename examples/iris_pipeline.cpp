// End-to-end Deep Positron pipeline on the Iris task: generate data, train
// the float32 reference, quantize into 8-bit posit/float/fixed, run
// EMAC-based inference, and report accelerator timing — the full workflow of
// the paper in one program.

#include <cstdio>

#include "arch/accelerator.hpp"
#include "core/experiment.hpp"

int main() {
  using namespace dp;

  std::printf("== Deep Positron / Iris pipeline ==\n\n");
  const core::TrainedTask task = core::prepare_task(core::iris_task());
  std::printf("train %zu samples, test %zu samples\n", task.split.train.size(),
              task.split.test.size());
  std::printf("float32 reference: train %.2f%%, test %.2f%%\n\n",
              task.float32_train_accuracy * 100, task.float32_test_accuracy * 100);

  std::printf("%-16s %10s %14s\n", "format", "accuracy", "degradation");
  for (const num::Format fmt : core::paper_comparison_formats(8)) {
    const core::FormatResult r = core::evaluate_format(task, fmt);
    std::printf("%-16s %9.2f%% %13.2f%%\n", fmt.name().c_str(), r.accuracy * 100,
                r.degradation_points);
  }

  std::printf("\naccelerator report for posit<8,0> (one EMAC per neuron):\n");
  const auto report =
      arch::simulate(nn::quantize(task.net, num::Format{num::PositFormat{8, 0}}));
  std::printf("  EMAC units        : %zu\n", report.emac_units);
  std::printf("  latency           : %zu cycles = %.3f us @ %.0f MHz\n",
              report.latency_cycles, report.latency_s * 1e6, report.clock_hz / 1e6);
  std::printf("  throughput        : %.0f inferences/s (streaming)\n",
              report.throughput_inf_per_s);
  std::printf("  on-chip memory    : %.1f Kbit of weights/biases\n",
              static_cast<double>(report.weight_memory_bits) / 1024.0);
  std::printf("  energy/inference  : %.3g nJ (dynamic)\n",
              report.dynamic_energy_per_inference_j * 1e9);
  return 0;
}
