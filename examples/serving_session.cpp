// Serving with the dp::runtime API: one immutable Model shared by several
// client Sessions, each with its own persistent worker pool, fed contiguous
// zero-copy batches — the inference-server shape the runtime subsystem
// exists for. Also demonstrates the single-sample zero-copy path and the
// bit-identity guarantee across pool sizes.

#include <cstdio>
#include <random>
#include <vector>

#include "core/experiment.hpp"
#include "nn/quantize.hpp"
#include "runtime/session.hpp"

int main() {
  using namespace dp;

  std::printf("== dp::runtime serving session ==\n\n");

  // 1. Train + quantize once, then freeze the result into a shared Model.
  //    The Model pre-decodes the weight planes at construction; everything
  //    in it is immutable and safe to share across threads and Sessions.
  const core::TrainedTask task = core::prepare_task(core::iris_task());
  const auto model =
      runtime::Model::create(nn::quantize(task.net, num::Format{num::PositFormat{8, 0}}));
  std::printf("[1] model: %s, %zu MACs/inference, input dim %zu\n",
              model->format().name().c_str(), model->macs_per_inference(),
              model->input_dim());

  // 2. A batch is one flat row-major buffer; BatchView is a non-owning view
  //    of it. Here we pack the test split once (a real server would point
  //    the view at its request buffer — no copy at all).
  const std::vector<double> flat = runtime::pack_rows(task.split.test.x, model->input_dim());
  const runtime::BatchView batch(flat, model->input_dim());
  std::printf("[2] packed %zu rows x %zu features into one buffer\n", batch.rows(),
              batch.row_width());

  // 3. Each client holds a Session: per-client scratch state plus a worker
  //    pool created once at construction and only woken per submit.
  runtime::Session serial(model);            // pool of 1: runs inline
  runtime::Session pooled(model, {4});       // 3 spawned workers + submitter
  std::printf("[3] sessions ready: serial=%zu thread, pooled=%zu threads\n",
              serial.num_threads(), pooled.num_threads());

  // 4. Batched predictions are bit-identical for every pool size.
  const std::vector<int> a = serial.predict(batch);
  const std::vector<int> b = pooled.predict(batch);
  std::printf("[4] serial and pooled predictions identical: %s\n",
              a == b ? "yes" : "NO <-- BUG");

  // 5. Flat results: forward_bits returns one allocation of rows x classes
  //    network-format patterns.
  runtime::BatchResult<std::uint32_t> bits = pooled.forward_bits(batch);
  std::printf("[5] forward_bits: %zu rows x %zu outputs, row 0 = [", bits.rows(),
              bits.row_width);
  for (std::size_t i = 0; i < bits.row_width; ++i) {
    std::printf("0x%02x%s", bits.row(0)[i], i + 1 < bits.row_width ? " " : "]\n");
  }

  // 6. Single-sample path: zero-copy in (any contiguous buffer) and out (a
  //    span into Session-owned state, valid until the next call).
  const auto scores = pooled.forward(batch.row(0));
  std::printf("[6] single-sample scores: [");
  for (std::size_t i = 0; i < scores.size(); ++i) {
    std::printf("%.3f%s", scores[i], i + 1 < scores.size() ? " " : "]\n");
  }

  const double acc = pooled.accuracy(batch, task.split.test.y);
  std::printf("[7] test accuracy through the pooled session: %.2f%%\n", acc * 100);
  return a == b ? 0 : 1;
}
