// Format explorer: prints the complete value table of a small posit format
// (every code with its regime/exponent/fraction fields), compares dynamic
// ranges across the paper's 8-bit grid, and tabulates quantization error on
// values drawn from [-1, 1] — the range where trained DNN weights live
// (Fig. 2 of the paper).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>

#include "numeric/format.hpp"

int main() {
  using namespace dp;

  // --- 1. Full value table of posit<6,1> -------------------------------------
  const num::PositFormat p6{6, 1};
  std::printf("posit<6,1> value table (%d codes):\n", 1 << 6);
  std::printf("%-8s %-10s %5s %4s %6s %12s\n", "bits", "pattern", "k", "e", "frac",
              "value");
  for (std::uint32_t bits = 0; bits < (1u << 6); ++bits) {
    char pattern[8];
    for (int i = 0; i < 6; ++i) pattern[i] = ((bits >> (5 - i)) & 1) ? '1' : '0';
    pattern[6] = 0;
    if (bits == 0 || bits == p6.nar_pattern()) {
      std::printf("0x%02x     %-10s %5s %4s %6s %12s\n", bits, pattern, "-", "-", "-",
                  bits == 0 ? "0" : "NaR");
      continue;
    }
    const num::PositFields f = num::posit_fields(bits, p6);
    std::printf("0x%02x     %-10s %5d %4u %6llu %12g\n", bits, pattern, f.k, f.exponent,
                static_cast<unsigned long long>(f.fraction),
                num::posit_to_double(bits, p6));
  }

  // --- 2. Dynamic ranges of the 8-bit grid ------------------------------------
  std::printf("\n8-bit format dynamic ranges:\n");
  for (const auto& fmt : num::paper_format_grid(8)) {
    std::printf("  %-16s max %12g  min+ %12g  range %6.2f decades\n",
                fmt.name().c_str(), fmt.max_value(), fmt.min_positive(),
                fmt.dynamic_range());
  }

  // --- 3. Quantization error on [-1, 1] (where DNN weights live) --------------
  std::printf("\nmean |quantization error| over 100k samples ~ N(0, 0.4), clipped to "
              "[-2, 2]:\n");
  std::mt19937 rng(1);
  std::normal_distribution<double> g(0.0, 0.4);
  for (const auto& fmt : num::paper_format_grid(8)) {
    double err = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
      double v = g(rng);
      v = std::clamp(v, -2.0, 2.0);
      err += std::fabs(fmt.to_double(fmt.from_double(v)) - v);
    }
    std::printf("  %-16s %.6f\n", fmt.name().c_str(), err / samples);
  }
  std::printf("\n(the posit formats with small es are densest around +-[0.1, 1] — the\n"
              " tapered-precision argument of the paper's Fig. 2)\n");
  return 0;
}
