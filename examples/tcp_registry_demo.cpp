// End-to-end tour of multi-model serving over real TCP (mirrored step by
// step in docs/deployment.md): train once, quantize the same network into
// two paper formats, ship both as .dpnet files, reload them into a
// serve::ModelRegistry behind a TCP server, query each entry by protocol-v2
// model name (and the default entry over plain v1), then hot-swap one entry
// while a client keeps its connection — no restart, no dropped request.
// Exits 0 only if every served prediction is bit-identical to a direct
// runtime::Session call on the matching model.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <span>
#include <vector>

#include "core/experiment.hpp"
#include "nn/io.hpp"
#include "nn/quantize.hpp"
#include "runtime/session.hpp"
#include "serve/server.hpp"

int main() {
  using namespace dp;
  using namespace std::chrono_literals;

  std::printf("== dp::serve TCP multi-model registry demo ==\n\n");

  // 1. Train the paper's Iris network once, quantize it into two of the
  //    Table II formats, and ship each as a dpnet-quant file — the offline
  //    half of the deployment workflow.
  const core::TrainedTask task = core::prepare_task(core::iris_task());
  const auto dir = std::filesystem::temp_directory_path();
  const std::string posit_path = (dir / "iris-posit8.dpnet").string();
  const std::string fixed_path = (dir / "iris-fixed8.dpnet").string();
  nn::save_quantized(posit_path, nn::quantize(task.net, num::Format{num::PositFormat{8, 0}}));
  nn::save_quantized(fixed_path, nn::quantize(task.net, num::Format{num::FixedFormat{8, 7}}));
  std::printf("[1] shipped %s and %s\n", posit_path.c_str(), fixed_path.c_str());

  // 2. The serving half: reload the files into shared Models and load both
  //    into a registry. The first load becomes the default (v1) route.
  const auto posit_model = runtime::Model::load(posit_path);
  const auto fixed_model = runtime::Model::load(fixed_path);
  serve::ModelRegistry registry;
  serve::BatcherOptions bopts;
  bopts.max_batch = 16;
  bopts.max_wait = 200us;
  registry.load("iris-posit8", posit_model, bopts);
  registry.load("iris-fixed8", fixed_model, bopts);
  std::printf("[2] registry: %zu entries, default '%s'\n", registry.names().size(),
              registry.default_name().c_str());

  // 3. One poll-driven server, one real TCP listener (ephemeral port here;
  //    fix a port in production), both entries behind it.
  serve::ServerOptions sopts;
  sopts.tcp_port = 0;
  serve::Server server(registry, sopts);
  std::printf("[3] serving on 127.0.0.1:%u\n", server.tcp_port());

  // 4. Query each entry by name over TCP; the v2 frame's model-name field is
  //    the router. Every reply must match a direct Session bit for bit.
  runtime::Session posit_direct(posit_model);
  runtime::Session fixed_direct(fixed_model);
  serve::Client to_posit = serve::connect_tcp(server.tcp_port(), posit_model, "iris-posit8");
  serve::Client to_fixed = serve::connect_tcp(server.tcp_port(), fixed_model, "iris-fixed8");
  serve::Client v1_client = serve::connect_tcp(server.tcp_port(), posit_model);  // default

  bool all_identical = true;
  std::size_t posit_correct = 0, fixed_correct = 0;
  const std::size_t probe = 20;
  for (std::size_t i = 0; i < probe; ++i) {
    const std::vector<double>& x = task.split.test.x[i];
    const int sp = to_posit.predict(x);
    const int sf = to_fixed.predict(x);
    if (sp != posit_direct.predict(std::span<const double>(x))) all_identical = false;
    if (sf != fixed_direct.predict(std::span<const double>(x))) all_identical = false;
    if (v1_client.predict(x) != sp) all_identical = false;  // v1 = default = posit entry
    if (sp == task.split.test.y[i]) ++posit_correct;
    if (sf == task.split.test.y[i]) ++fixed_correct;
  }
  std::printf("[4] %zu test samples: posit8 %zu correct, fixed8 %zu correct, "
              "served == direct Session: %s\n",
              probe, posit_correct, fixed_correct, all_identical ? "yes" : "NO <-- BUG");

  // 5. An unknown name is a response, not a dropped connection.
  serve::Client lost = serve::connect_tcp(server.tcp_port(), posit_model, "no-such-model");
  const serve::Reply nf = lost.forward_bits(task.split.test.x[0]);
  std::printf("[5] unknown model name -> status '%s'\n", serve::to_string(nf.status));

  // 6. Hot reload: re-ship the posit file (same weights here; retrained ones
  //    in real life) and swap it in while the connections stay up. The swap
  //    drains in-flight requests on the old model before releasing it.
  registry.load("iris-posit8", runtime::Model::load(posit_path), bopts);
  const int after_swap = to_posit.predict(task.split.test.x[0]);
  if (after_swap != posit_direct.predict(std::span<const double>(task.split.test.x[0]))) {
    all_identical = false;
  }
  std::printf("[6] hot swap of 'iris-posit8' done (swaps so far: %llu); "
              "same client, same connection, still bit-identical: %s\n",
              static_cast<unsigned long long>(registry.counters().swaps),
              all_identical ? "yes" : "NO <-- BUG");

  // 7. Observability: per-entry batcher stats plus the server's wire view.
  const serve::ServerStats stats = server.stats();
  const auto posit_stats = registry.stats("iris-posit8");
  const auto fixed_stats = registry.stats("iris-fixed8");
  std::printf("[7] wire: %llu frames in / %llu out over %llu connections; "
              "posit entry served %llu (fresh counters since the swap), "
              "fixed entry served %llu\n",
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.frames_out),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(posit_stats ? posit_stats->completed : 0),
              static_cast<unsigned long long>(fixed_stats ? fixed_stats->completed : 0));

  const bool not_found_ok = nf.status == serve::Status::kNotFound;
  return all_identical && not_found_ok ? 0 : 1;
}
