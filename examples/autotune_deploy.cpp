// The mixed-precision deployment pipeline end to end (docs/deployment.md §
// "Autotune, ship, serve"): run the dp::tune bit-budget autotuner on the
// paper's Iris and WBC networks, quantize each into the per-layer assignment
// it found, ship the mixed models as .dpnetz containers, reload them into a
// TCP serve::ModelRegistry and verify every served prediction — including
// over compressed v4 payloads — bit-identical to a direct runtime::Session.
// Writes the machine-readable tuning report (the artifact CI uploads) to
// argv[1], default "autotune_report.json". Exits 0 only when both budgets
// were met and every served reply matched.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "nn/io.hpp"
#include "nn/quantize.hpp"
#include "runtime/session.hpp"
#include "serve/server.hpp"
#include "tune/tuner.hpp"

namespace {

struct Deployed {
  dp::tune::TuneReport report;
  std::string json;
  std::shared_ptr<const dp::runtime::Model> model;
  bool served_identical = true;
};

Deployed deploy(const dp::core::TrainedTask& task, dp::serve::ModelRegistry& registry,
                double budget_bits) {
  using namespace dp;

  // 1. Autotune: "fit this net in budget_bits bits/weight, lose < 0.5
  //    accuracy points against the best uniform 8-bit format".
  tune::TuneOptions topts;
  topts.max_bits_per_weight = budget_bits;
  topts.max_accuracy_drop_points = 0.5;
  const tune::TuneReport report = tune::tune_bit_budget(task, topts);
  std::printf("[%s] baseline %s acc %.4f @ %.2f b/w -> tuned acc %.4f @ %.2f b/w "
              "(%zu moves, budget %.2f %s)\n",
              task.spec.name.c_str(), report.baseline_format.name().c_str(),
              report.baseline_accuracy, report.baseline_bits_per_weight, report.accuracy,
              report.bits_per_weight, report.steps.size(), budget_bits,
              report.met_budget ? "met" : "NOT MET");
  for (const tune::TuneStep& s : report.steps) {
    std::printf("        layer %zu -> %s (acc %.4f, %.2f b/w)\n", s.layer,
                s.format.name().c_str(), s.accuracy, s.bits_per_weight);
  }

  // 2. Ship: quantize the float32 net into the tuned per-layer assignment
  //    and write the compressed container. A mixed network writes the v2
  //    format table; a uniform fallback would write plain v1 — either way
  //    Model::load reads it back transparently.
  const auto path = std::filesystem::temp_directory_path() /
                    (task.spec.name + "-autotuned.dpnetz");
  nn::save_quantized_compressed(path.string(),
                                nn::quantize(task.net, report.assignment));
  const auto model = runtime::Model::load(path.string());
  std::printf("        shipped %s (%s kernel%s)\n", path.string().c_str(),
              model->kernel_name(), model->mixed_format() ? ", mixed formats" : "");

  // 3. Serve: load the reloaded artifact into the registry and check served
  //    == direct over raw and compressed payloads.
  registry.load(task.spec.name + "-tuned", model, {});
  return Deployed{report, tune::report_json(report, task.spec.name), model, true};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dp;

  std::printf("== dp::tune autotune -> ship -> serve pipeline ==\n\n");
  const std::string report_path = argc > 1 ? argv[1] : "autotune_report.json";

  const core::TrainedTask iris = core::prepare_task(core::iris_task());
  const core::TrainedTask wbc = core::prepare_task(core::wbc_task());

  serve::ModelRegistry registry;
  Deployed iris_dep = deploy(iris, registry, 7.0);
  Deployed wbc_dep = deploy(wbc, registry, 7.0);

  serve::ServerOptions sopts;
  sopts.tcp_port = 0;
  serve::Server server(registry, sopts);
  std::printf("\n[serve] registry on 127.0.0.1:%u with %zu entries\n", server.tcp_port(),
              registry.names().size());

  bool all_identical = true;
  for (auto* item : {&iris_dep, &wbc_dep}) {
    const core::TrainedTask& task = item == &iris_dep ? iris : wbc;
    const std::shared_ptr<const runtime::Model>& model = item->model;
    runtime::Session direct(model);
    serve::Client raw = serve::connect_tcp(server.tcp_port(), model,
                                           task.spec.name + "-tuned");
    serve::ClientOptions copts;
    copts.compress = true;  // protocol v4: entropy-coded payloads both ways
    serve::Client packed = serve::connect_tcp(server.tcp_port(), model,
                                              task.spec.name + "-tuned", copts);
    const std::size_t probe = std::min<std::size_t>(20, task.split.test.x.size());
    for (std::size_t i = 0; i < probe; ++i) {
      const std::vector<double>& x = task.split.test.x[i];
      const int want = direct.predict(std::span<const double>(x));
      if (raw.predict(x) != want || packed.predict(x) != want) {
        item->served_identical = false;
        all_identical = false;
      }
    }
    std::printf("[serve] %s: %zu served predictions (raw + compressed v4) %s\n",
                task.spec.name.c_str(), probe,
                item->served_identical ? "bit-identical to direct Session"
                                       : "DIVERGED <-- BUG");
  }

  // The CI artifact: one JSON document holding both tuning reports.
  std::ofstream os(report_path);
  os << "[\n" << iris_dep.json << ",\n" << wbc_dep.json << "\n]\n";
  os.flush();
  if (!os) return 1;
  std::printf("\n[report] wrote %s\n", report_path.c_str());

  const bool budgets_met = iris_dep.report.met_budget && wbc_dep.report.met_budget;
  return all_identical && budgets_met ? 0 : 1;
}
